//! The Theorem 13 worst case: nested overlapping intervals.
//!
//! `n` facts `R(aᵢ, [i, 2n−i))` are pairwise overlapping; against a
//! cross-product conjunction `R(x, t₁) ∧ R(y, t₂)` they all land in one
//! merged group, so every fact is fragmented at (almost) every one of the
//! `2n` distinct endpoints — the normalized instance has `Θ(n²)` facts.

use std::sync::Arc;
use tdx_logic::{parse_egd, parse_schema, parse_tgd, Atom, SchemaMapping};
use tdx_storage::TemporalInstance;
use tdx_temporal::Interval;

/// Builds the nested-interval instance with `n ≥ 1` facts and the
/// self-join conjunction `R(x) ∧ R(y)` that groups them all.
pub fn nested_intervals(n: usize) -> (TemporalInstance, Vec<Atom>) {
    let schema = Arc::new(parse_schema("R(a).").unwrap());
    let mut ic = TemporalInstance::new(schema);
    let n64 = n as u64;
    for i in 0..n64 {
        // [i, 2n - i): strictly nested, all sharing the midpoint.
        let iv = Interval::new(i, 2 * n64 - i);
        ic.insert_strs("R", &[&format!("a{i}")], iv);
    }
    let conj = parse_tgd("R(x) & R(y) -> Sink(x)").unwrap().body;
    (ic, conj)
}

/// A full data exchange setting on the nested family: copies `R` to `T`
/// through a cross-product body, with an egd forcing per-interval agreement
/// of the copied value with a witness relation. Used by the chase-scaling
/// benchmarks.
pub fn nested_mapping(n: usize) -> (SchemaMapping, TemporalInstance) {
    let mapping = SchemaMapping::new(
        parse_schema("R(a).").unwrap(),
        parse_schema("T(a, w).").unwrap(),
        vec![parse_tgd("R(x) & R(y) -> exists w . T(x, w)")
            .unwrap()
            .named("cross")],
        vec![parse_egd("T(a, w) & T(a, w2) -> w = w2")
            .unwrap()
            .named("wfd")],
    )
    .expect("valid mapping");
    let (ic, _) = nested_intervals(n);
    // Rebuild over the mapping's source schema object (same relations).
    let mut src = TemporalInstance::new(Arc::new(mapping.source().clone()));
    for (rel, fact) in ic.iter_all() {
        src.insert(rel, fact.data.clone(), fact.interval);
    }
    (mapping, src)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdx_core::normalize::{has_empty_intersection_property, normalize};

    #[test]
    fn all_pairs_overlap() {
        let (ic, _) = nested_intervals(6);
        let facts: Vec<_> = ic.iter_all().map(|(_, f)| f.interval).collect();
        for a in &facts {
            for b in &facts {
                assert!(a.overlaps(b));
            }
        }
    }

    #[test]
    fn normalized_size_is_quadratic() {
        for n in [4usize, 8, 16] {
            let (ic, conj) = nested_intervals(n);
            let out = normalize(&ic, &[&conj]).unwrap();
            // Fact i is cut at interior endpoints of [i, 2n−i): those are
            // the 2(n−1−i) points strictly inside, giving 2(n−i)−1
            // fragments; total = Σ_{i<n} (2(n−i)−1) = n².
            assert_eq!(out.total_len(), n * n, "n = {n}");
            assert!(has_empty_intersection_property(&out, &[&conj]).unwrap());
        }
    }

    #[test]
    fn mapping_chases_clean() {
        let (mapping, src) = nested_mapping(5);
        let result = tdx_core::c_chase(&src, &mapping).unwrap();
        assert!(!result.target.is_empty());
    }
}
