//! Offline stand-in for the subset of the `criterion` crate this workspace
//! uses.
//!
//! The build environment has no access to crates.io, so the benches link
//! against this drop-in. It keeps the upstream surface (`benchmark_group`,
//! `bench_with_input`, `Bencher::iter`, `criterion_group!`/`criterion_main!`)
//! and measures with plain wall-clock sampling: per benchmark it warms up,
//! picks an iteration count that fits the measurement budget, takes
//! `sample_size` samples, and reports min/median/mean. Results are printed
//! and written as JSON to `<out dir>/<bench>.json`.
//!
//! Environment knobs:
//!
//! * `TDX_BENCH_FAST=1` — shrink budgets (~20×) for CI smoke runs;
//! * `TDX_BENCH_OUT_DIR` — where the JSON reports go. Defaults to `out/`
//!   relative to the bench binary's working directory — `cargo bench` runs
//!   from the package dir, so reports land in `crates/bench/out/` (which is
//!   git-ignored), never inside a `target/` tree that caching may persist.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just the parameter (for single-function groups).
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// Drives the timed iterations of one benchmark.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `f`.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// One finished measurement.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// `group/benchmark` path.
    pub id: String,
    /// Mean nanoseconds per iteration.
    pub mean_ns: f64,
    /// Median nanoseconds per iteration.
    pub median_ns: f64,
    /// Fastest sample, nanoseconds per iteration.
    pub min_ns: f64,
    /// Number of samples taken.
    pub samples: usize,
    /// Iterations per sample.
    pub iters_per_sample: u64,
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1}ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2}µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2}ms", ns / 1_000_000.0)
    } else {
        format!("{:.3}s", ns / 1_000_000_000.0)
    }
}

fn fast_mode() -> bool {
    std::env::var("TDX_BENCH_FAST").is_ok_and(|v| v == "1")
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    results: Vec<Measurement>,
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
            measurement_time: Duration::from_secs(1),
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnMut(&mut Bencher)) {
        let id: BenchmarkId = id.into();
        let m = measure(&id.id, 20, Duration::from_secs(1), f);
        self.results.push(m);
    }

    /// Prints the run summary and writes the JSON report. Called by
    /// [`criterion_main!`].
    pub fn final_summary(&self) {
        let stem = std::env::args()
            .next()
            .and_then(|p| {
                std::path::Path::new(&p)
                    .file_stem()
                    .map(|s| s.to_string_lossy().into_owned())
            })
            .map(|s| {
                // Strip the `-<hash>` cargo appends to bench binaries.
                match s.rfind('-') {
                    Some(i) if s[i + 1..].chars().all(|c| c.is_ascii_hexdigit()) => {
                        s[..i].to_string()
                    }
                    _ => s,
                }
            })
            .unwrap_or_else(|| "bench".to_string());
        let dir = std::path::PathBuf::from(
            std::env::var("TDX_BENCH_OUT_DIR").unwrap_or_else(|_| "out".to_string()),
        );
        if std::fs::create_dir_all(&dir).is_ok() {
            let path = dir.join(format!("{stem}.json"));
            if std::fs::write(&path, self.to_json()).is_ok() {
                eprintln!("criterion stand-in: wrote {}", path.display());
            }
        }
    }

    /// The run's results as a JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"benchmarks\": [\n");
        for (i, m) in self.results.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"id\": \"{}\", \"mean_ns\": {:.1}, \"median_ns\": {:.1}, \"min_ns\": {:.1}, \"samples\": {}, \"iters_per_sample\": {}}}{}\n",
                m.id.replace('"', "'"),
                m.mean_ns,
                m.median_ns,
                m.min_ns,
                m.samples,
                m.iters_per_sample,
                if i + 1 < self.results.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// A group of benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the total measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Benchmarks `f` with `input`.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.id);
        let m = measure(&full, self.sample_size, self.measurement_time, |b| {
            f(b, input)
        });
        self.criterion.results.push(m);
        self
    }

    /// Benchmarks `f` with no input.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id: BenchmarkId = id.into();
        let full = format!("{}/{}", self.name, id.id);
        let m = measure(&full, self.sample_size, self.measurement_time, f);
        self.criterion.results.push(m);
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

fn measure(
    id: &str,
    sample_size: usize,
    measurement_time: Duration,
    mut f: impl FnMut(&mut Bencher),
) -> Measurement {
    let (sample_size, measurement_time) = if fast_mode() {
        (sample_size.min(3), measurement_time / 20)
    } else {
        (sample_size, measurement_time)
    };
    // Warmup and per-iteration estimate.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let budget_per_sample = measurement_time.as_nanos() / sample_size.max(1) as u128;
    let iters = (budget_per_sample / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;
    let mut per_iter_ns: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
    }
    per_iter_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let min = per_iter_ns[0];
    let median = per_iter_ns[per_iter_ns.len() / 2];
    let mean = per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64;
    println!(
        "{id:<60} time: [{} {} {}]",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(mean)
    );
    Measurement {
        id: id.to_string(),
        mean_ns: mean,
        median_ns: median,
        min_ns: min,
        samples: sample_size,
        iters_per_sample: iters,
    }
}

/// Bundles benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generates `main` for a bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}
