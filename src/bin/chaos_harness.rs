//! CI fail-slow gate for the distributed chase: the chaos soak.
//!
//! Sweeps seeded [`FaultPlan`]s — delays, hangs, drops, corruption,
//! duplicated frames and partial writes at pseudo-random frame offsets —
//! against a distributed c-chase and requires every run to end in one of
//! exactly two ways:
//!
//! 1. **byte-identical completion**: the retry/quarantine path absorbed
//!    the faults and the target equals the unfaulted reference, or
//! 2. **a clean typed error**: the chase failed loudly with an
//!    `Err(..)` (e.g. a desynchronized carrier past its respawn budget).
//!
//! What is *never* acceptable is a wedge: every run executes under a
//! watchdog, and a run that neither completes nor errors within the
//! watchdog window fails the gate — that is precisely the fail-slow hang
//! the per-frame deadline exists to prevent.
//!
//! The transport comes from the CI matrix's `TDX_CHASE_TRANSPORT`
//! (`channel|tcp`, plus `TDX_SERVE_BIN` for real child servers); unset
//! runs in-process channels. On failure the offending plan is written
//! under `--out DIR` (default `target/chaos-failure`) so CI can upload it
//! as an artifact; the seed in the report replays it exactly.

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;
use tdx::core::chase::cluster::{
    c_chase_distributed_with, resolve_transport, spawner_for, ChaosSpawner, FaultKind, FaultPlan,
    TransportSpawner,
};
use tdx::workload::{EmploymentConfig, EmploymentWorkload};
use tdx::{c_chase_with, CChaseResult, ChaseOptions, SchemaMapping, TemporalInstance};

const SERVERS: usize = 3;
/// Past the last frame offset any carrier reaches in this workload, so
/// generated offsets cover the whole protocol run.
const MAX_FRAME: usize = 24;
/// Small enough to keep hang faults cheap, large enough that no healthy
/// round on a loaded CI box trips it.
const FRAME_DEADLINE: Duration = Duration::from_millis(500);
/// A run that produces neither a result nor an error in this window is a
/// wedge — the failure class this gate exists to catch.
const WATCHDOG: Duration = Duration::from_secs(120);

fn workload() -> EmploymentWorkload {
    EmploymentWorkload::generate(&EmploymentConfig {
        persons: 20,
        horizon: 30,
        salary_coverage: 0.7,
        seed: 9,
        ..EmploymentConfig::default()
    })
}

fn chase_options() -> ChaseOptions {
    let mut opts = ChaseOptions::distributed(SERVERS).with_frame_deadline(FRAME_DEADLINE);
    if let Some(t) = std::env::var("TDX_CHASE_TRANSPORT").ok().as_deref() {
        let kind = tdx::core::TransportKind::parse(t)
            .unwrap_or_else(|| panic!("bad TDX_CHASE_TRANSPORT {t}"));
        opts.transport = Some(kind);
    }
    opts
}

enum Outcome {
    /// Completed; payload is the target instance for the identity check.
    Done(Box<CChaseResult>),
    /// Failed loudly with a typed error — acceptable under chaos.
    Errored(String),
    /// Neither within the watchdog window: the coordinator wedged.
    Wedged,
}

/// Runs one chaotic chase under the watchdog. The chase runs on a helper
/// thread; if the watchdog fires the thread is abandoned (it is wedged by
/// definition) and the process must exit rather than join it.
fn run_under_watchdog(
    source: &TemporalInstance,
    mapping: &SchemaMapping,
    opts: &ChaseOptions,
    plan: &FaultPlan,
) -> Outcome {
    let (tx, rx) = mpsc::channel();
    let source = source.clone();
    let mapping = mapping.clone();
    let opts = opts.clone();
    let spawner = Arc::new(ChaosSpawner::new(
        spawner_for(resolve_transport(opts.transport)),
        plan,
    ));
    std::thread::spawn(move || {
        let out = c_chase_distributed_with(
            &source,
            &mapping,
            &opts,
            SERVERS,
            spawner as Arc<dyn TransportSpawner>,
        );
        let _ = tx.send(out);
    });
    match rx.recv_timeout(WATCHDOG) {
        Ok(Ok(result)) => Outcome::Done(Box::new(result)),
        Ok(Err(e)) => Outcome::Errored(e.to_string()),
        Err(_) => Outcome::Wedged,
    }
}

/// The sweep schedule: seeded multi-fault plans, then a directed
/// single-fault sweep of every kind across the early frame offsets (the
/// handshake and first fused rounds, where recovery has the most state to
/// replay).
fn plans() -> Vec<FaultPlan> {
    let mut plans: Vec<FaultPlan> = (1..=10)
        .map(|seed| FaultPlan::generate(seed, SERVERS, MAX_FRAME, 5))
        .collect();
    for kind in [
        FaultKind::Delay(40),
        FaultKind::Hang,
        FaultKind::Drop,
        FaultKind::Corrupt,
        FaultKind::Duplicate,
        FaultKind::PartialWrite,
    ] {
        for offset in 0..6 {
            plans.push(FaultPlan::single(1, offset, kind));
        }
    }
    plans
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/chaos-failure"));

    let opts = chase_options();
    let transport = std::env::var("TDX_CHASE_TRANSPORT").unwrap_or_else(|_| "channel".into());
    println!("chaos harness: transport = {transport}, {SERVERS} servers");

    let w = workload();
    let clean = match c_chase_with(&w.source, &w.mapping, &opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("FAIL reference chase (no faults) errored: {e}");
            return ExitCode::FAILURE;
        }
    };

    let plans = plans();
    let (mut completed, mut errored) = (0usize, 0usize);
    for (i, plan) in plans.iter().enumerate() {
        match run_under_watchdog(&w.source, &w.mapping, &opts, plan) {
            Outcome::Done(result) => {
                if result.target != clean.target {
                    let report = format!(
                        "chaotic run diverged from the unfaulted reference\n{}",
                        plan.describe()
                    );
                    eprintln!("FAIL plan {}/{}: {report}", i + 1, plans.len());
                    dump(&out, &report);
                    return ExitCode::FAILURE;
                }
                completed += 1;
            }
            Outcome::Errored(e) => {
                // A typed error is a legitimate chaos outcome; record it
                // so the log shows which plans exhausted recovery.
                println!("  plan {}/{} errored cleanly: {e}", i + 1, plans.len());
                errored += 1;
            }
            Outcome::Wedged => {
                let report = format!(
                    "coordinator wedged: no result and no error within {WATCHDOG:?}\n{}",
                    plan.describe()
                );
                eprintln!("FAIL plan {}/{}: {report}", i + 1, plans.len());
                dump(&out, &report);
                // The chase thread is hung; exiting the process is the
                // only way out.
                std::process::exit(1);
            }
        }
    }
    println!(
        "PASS {} plans: {completed} byte-identical completions, {errored} clean errors, 0 wedges",
        plans.len()
    );
    ExitCode::SUCCESS
}

/// Writes the failure report (with its replayable seed) where CI uploads
/// artifacts from.
fn dump(out: &PathBuf, report: &str) {
    if std::fs::create_dir_all(out).is_ok() {
        let path = out.join("fault-plan.txt");
        match std::fs::write(&path, report) {
            Ok(()) => eprintln!("offending plan written to {}", path.display()),
            Err(e) => eprintln!("could not write plan: {e}"),
        }
    }
}
