//! Chase invariants as properties: everything Theorem 19 promises about a
//! successful c-chase, checked on random workloads.

use proptest::prelude::*;
use tdx::core::normalize::has_empty_intersection_property;
use tdx::core::verify::{is_solution_concrete, satisfies_egd, satisfies_tgd};
use tdx::workload::{EmploymentConfig, EmploymentWorkload, RandomConfig, RandomWorkload};
use tdx::{c_chase_with, semantics, ChaseOptions};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// A successful c-chase result is a solution: every snapshot pair
    /// satisfies Σst ∪ Σeg.
    #[test]
    fn chase_result_is_a_solution(seed in 0u64..3000) {
        let w = RandomWorkload::generate(&RandomConfig {
            seed,
            facts: 16,
            horizon: 14,
            ..RandomConfig::default()
        });
        if let Ok(result) = c_chase_with(&w.source, &w.mapping, &ChaseOptions::default()) {
            prop_assert!(is_solution_concrete(&w.source, &result.target, &w.mapping).unwrap());
        }
    }

    /// The normalized source the chase ran on has the same semantics as the
    /// input, and the empty intersection property w.r.t. every tgd body.
    #[test]
    fn normalized_source_invariants(seed in 0u64..3000) {
        let w = EmploymentWorkload::generate(&EmploymentConfig {
            persons: 5,
            horizon: 14,
            seed,
            salary_coverage: 0.7,
            ..EmploymentConfig::default()
        });
        let result = c_chase_with(&w.source, &w.mapping, &ChaseOptions::default()).unwrap();
        prop_assert!(semantics(&w.source).eq_semantic(&semantics(&result.normalized_source)));
        let bodies = w.mapping.tgd_bodies();
        prop_assert!(
            has_empty_intersection_property(&result.normalized_source, &bodies).unwrap()
        );
    }

    /// Chase statistics are internally consistent.
    #[test]
    fn stats_are_consistent(seed in 0u64..3000, coverage in 0.3f64..1.0) {
        let w = EmploymentWorkload::generate(&EmploymentConfig {
            persons: 4,
            horizon: 12,
            seed,
            salary_coverage: coverage,
            ..EmploymentConfig::default()
        });
        let result = c_chase_with(&w.source, &w.mapping, &ChaseOptions::default()).unwrap();
        let s = &result.stats;
        prop_assert_eq!(s.source_facts_in, w.source.total_len());
        prop_assert!(s.source_facts_normalized >= s.source_facts_in);
        prop_assert!(s.target_facts_normalized >= s.target_facts_after_tgd);
        prop_assert_eq!(s.target_facts_out, result.target.total_len());
        // Every tgd step inserts at least one head atom's fact (possibly
        // deduplicated later), and nulls come only from tgd steps.
        prop_assert!(s.tgd_steps as u64 >= s.nulls_created / 4);
        // Egd rounds happened iff merges happened.
        prop_assert_eq!(s.egd_rounds == 0, s.egd_merges == 0);
    }

    /// Every snapshot of the solution individually satisfies each
    /// dependency — the paper's per-snapshot definition, spot-checked at
    /// each epoch representative.
    #[test]
    fn per_snapshot_satisfaction(seed in 0u64..3000) {
        let w = EmploymentWorkload::generate(&EmploymentConfig {
            persons: 4,
            horizon: 12,
            seed,
            salary_coverage: 0.8,
            ..EmploymentConfig::default()
        });
        let result = c_chase_with(&w.source, &w.mapping, &ChaseOptions::default()).unwrap();
        let src_sem = semantics(&w.source);
        let tgt_sem = semantics(&result.target);
        for (_, src_snap, tgt_snap) in src_sem.zip_refined(&tgt_sem) {
            // Re-encode through the public conversion used by the verifier:
            // project at the representative point.
            let t = src_snap.iter_all().next().map(|_| ());
            let _ = t;
            let src_db = {
                let mut db = tdx::storage::Instance::new(src_sem.schema_arc());
                for (rel, row) in src_snap.iter_all() {
                    db.insert(rel, row.iter().map(|v| match v {
                        tdx::core::AValue::Const(c) => tdx::storage::Value::Const(*c),
                        tdx::core::AValue::PerPoint(b) | tdx::core::AValue::Rigid(b) =>
                            tdx::storage::Value::Null(*b),
                    }).collect());
                }
                db
            };
            let tgt_db = {
                let mut db = tdx::storage::Instance::new(tgt_sem.schema_arc());
                for (rel, row) in tgt_snap.iter_all() {
                    db.insert(rel, row.iter().map(|v| match v {
                        tdx::core::AValue::Const(c) => tdx::storage::Value::Const(*c),
                        tdx::core::AValue::PerPoint(b) | tdx::core::AValue::Rigid(b) =>
                            tdx::storage::Value::Null(*b),
                    }).collect());
                }
                db
            };
            for tgd in w.mapping.st_tgds() {
                prop_assert!(satisfies_tgd(&src_db, &tgt_db, tgd).unwrap());
            }
            for egd in w.mapping.egds() {
                prop_assert!(satisfies_egd(&tgt_db, egd).unwrap());
            }
        }
    }
}
