//! Homomorphisms between instances.
//!
//! Two levels, mirroring the paper:
//!
//! * [`snapshot_hom`] — classical homomorphisms between relational
//!   snapshots (identity on constants, nulls map anywhere);
//! * [`abstract_hom`] — homomorphisms between abstract instances per the
//!   paper's two-condition definition (Section 3): a *single global* mapping
//!   of labeled nulls whose restriction to every snapshot is a snapshot
//!   homomorphism. The null-scope rules make Example 2 come out right:
//!   a [`AValue::Rigid`] null spanning several time points can never map to
//!   a [`AValue::PerPoint`] family (`J₁ ↛ J₂`), while per-point families map
//!   onto rigid nulls pointwise (`J₂ → J₁`).

use crate::abstract_view::{ASnapshot, AValue, AbstractInstance};
use tdx_logic::RelId;
use tdx_storage::fxhash::FxHashMap;
use tdx_storage::{Instance, NullId, Row, Value};

// ---------------------------------------------------------------------
// Snapshot-level homomorphisms
// ---------------------------------------------------------------------

/// Searches for a homomorphism `from → to` between snapshots: a mapping of
/// labeled nulls to values that is the identity on constants and sends every
/// fact of `from` to a fact of `to`. Returns the null mapping if one exists.
pub fn snapshot_hom(from: &Instance, to: &Instance) -> Option<FxHashMap<NullId, Value>> {
    let mut facts: Vec<(RelId, &Row)> = from.iter_all().collect();
    // Most-constrained first: facts with fewer nulls prune faster.
    facts.sort_by_key(|(_, row)| row.iter().filter(|v| v.is_null()).count());
    let mut assign: FxHashMap<NullId, Value> = FxHashMap::default();
    if search_snapshot(&facts, 0, to, &mut assign) {
        Some(assign)
    } else {
        None
    }
}

/// Whether the two snapshots are homomorphically equivalent.
pub fn hom_equivalent_snapshots(a: &Instance, b: &Instance) -> bool {
    snapshot_hom(a, b).is_some() && snapshot_hom(b, a).is_some()
}

fn search_snapshot(
    facts: &[(RelId, &Row)],
    depth: usize,
    to: &Instance,
    assign: &mut FxHashMap<NullId, Value>,
) -> bool {
    let Some((rel, row)) = facts.get(depth) else {
        return true;
    };
    'candidates: for cand in to.rows(*rel) {
        let mut newly: Vec<NullId> = Vec::new();
        for (a, b) in row.iter().zip(cand.iter()) {
            let ok = match a {
                Value::Const(_) => a == b,
                Value::Null(n) => match assign.get(n) {
                    Some(mapped) => mapped == b,
                    None => {
                        assign.insert(*n, *b);
                        newly.push(*n);
                        true
                    }
                },
            };
            if !ok {
                for n in newly {
                    assign.remove(&n);
                }
                continue 'candidates;
            }
        }
        if search_snapshot(facts, depth + 1, to, assign) {
            return true;
        }
        for n in newly {
            assign.remove(&n);
        }
    }
    false
}

// ---------------------------------------------------------------------
// Abstract-level homomorphisms
// ---------------------------------------------------------------------

/// A source null key: per-point families are scoped to a refined epoch
/// (their members `(b, ℓ)` are distinct per point, so each epoch's slice can
/// map independently); rigid nulls are global.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum SrcKey {
    PerPoint(NullId, usize),
    Rigid(NullId),
}

/// The image of a source null inside one epoch. `PerPoint(b')` means the
/// pointwise-aligned mapping `(b, ℓ) ↦ (b', ℓ)`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum TgtVal {
    Const(tdx_logic::Constant),
    Rigid(NullId),
    PerPoint(NullId),
}

fn tgt_val(v: &AValue) -> TgtVal {
    match v {
        AValue::Const(c) => TgtVal::Const(*c),
        AValue::Rigid(b) => TgtVal::Rigid(*b),
        AValue::PerPoint(b) => TgtVal::PerPoint(*b),
    }
}

/// Searches for an abstract homomorphism `from → to`.
///
/// Implements Section 3's definition on the finite epoch representation: one
/// global null mapping whose restriction to every snapshot is a snapshot
/// homomorphism. Scope rules:
///
/// * `PerPoint(b)` in epoch `E` may map pointwise to a constant, to a rigid
///   target null, or aligned onto a per-point target family of the same
///   epoch;
/// * `Rigid(b)` may map to a constant or a rigid target null; it may map to
///   a per-point target family only when `b` occurs at exactly **one** time
///   point (otherwise two snapshots would need `h(b)` to be two different
///   labeled nulls, violating globality — the paper's Example 2).
pub fn abstract_hom(from: &AbstractInstance, to: &AbstractInstance) -> bool {
    let zipped = from.zip_refined(to);
    // Occurrence analysis for rigid source nulls.
    let mut rigid_occurrences: FxHashMap<NullId, Vec<usize>> = FxHashMap::default();
    for (ei, (_, s_from, _)) in zipped.iter().enumerate() {
        let (_, rigids) = s_from.null_bases();
        for b in rigids {
            rigid_occurrences.entry(b).or_default().push(ei);
        }
    }
    let rigid_single_point: FxHashMap<NullId, bool> = rigid_occurrences
        .iter()
        .map(|(b, eps)| {
            let single = eps.len() == 1 && zipped[eps[0]].0.len() == Some(1);
            (*b, single)
        })
        .collect();

    // Work list: (epoch index, relation, source row), most-constrained first
    // inside each epoch.
    let mut work: Vec<(usize, RelId, &std::sync::Arc<[AValue]>)> = Vec::new();
    for (ei, (_, s_from, _)) in zipped.iter().enumerate() {
        let mut facts: Vec<(RelId, &std::sync::Arc<[AValue]>)> = s_from.iter_all().collect();
        facts.sort_by_key(|(_, row)| row.iter().filter(|v| v.is_null()).count());
        for (rel, row) in facts {
            work.push((ei, rel, row));
        }
    }
    let targets: Vec<&ASnapshot> = zipped.iter().map(|(_, _, s_to)| *s_to).collect();
    let mut assign: FxHashMap<SrcKey, TgtVal> = FxHashMap::default();
    search_abstract(&work, 0, &targets, &rigid_single_point, &mut assign)
}

fn search_abstract(
    work: &[(usize, RelId, &std::sync::Arc<[AValue]>)],
    depth: usize,
    targets: &[&ASnapshot],
    rigid_single_point: &FxHashMap<NullId, bool>,
    assign: &mut FxHashMap<SrcKey, TgtVal>,
) -> bool {
    let Some((ei, rel, row)) = work.get(depth) else {
        return true;
    };
    let target = targets[*ei];
    'candidates: for cand in target.rows(*rel) {
        let mut newly: Vec<SrcKey> = Vec::new();
        for (a, b) in row.iter().zip(cand.iter()) {
            let w = tgt_val(b);
            let ok = match a {
                AValue::Const(c) => w == TgtVal::Const(*c),
                AValue::PerPoint(n) => {
                    let key = SrcKey::PerPoint(*n, *ei);
                    match assign.get(&key) {
                        Some(mapped) => *mapped == w,
                        None => {
                            assign.insert(key, w);
                            newly.push(key);
                            true
                        }
                    }
                }
                AValue::Rigid(n) => {
                    let key = SrcKey::Rigid(*n);
                    let scope_ok = match w {
                        TgtVal::PerPoint(_) => rigid_single_point.get(n).copied().unwrap_or(false),
                        _ => true,
                    };
                    scope_ok
                        && match assign.get(&key) {
                            Some(mapped) => *mapped == w,
                            None => {
                                assign.insert(key, w);
                                newly.push(key);
                                true
                            }
                        }
                }
            };
            if !ok {
                for k in newly {
                    assign.remove(&k);
                }
                continue 'candidates;
            }
        }
        if search_abstract(work, depth + 1, targets, rigid_single_point, assign) {
            return true;
        }
        for k in newly {
            assign.remove(&k);
        }
    }
    false
}

/// Homomorphic equivalence `a ∼ b` — the relation of Corollary 20.
pub fn hom_equivalent(a: &AbstractInstance, b: &AbstractInstance) -> bool {
    abstract_hom(a, b) && abstract_hom(b, a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abstract_view::AbstractInstanceBuilder;
    use std::sync::Arc;
    use tdx_logic::{RelationSchema, Schema};
    use tdx_storage::row;
    use tdx_temporal::Interval;

    fn iv(s: u64, e: u64) -> Interval {
        Interval::new(s, e)
    }

    fn schema() -> Arc<Schema> {
        Arc::new(
            Schema::new(vec![RelationSchema::new(
                "Emp",
                &["name", "company", "salary"],
            )])
            .unwrap(),
        )
    }

    // ----- snapshot level -----

    #[test]
    fn snapshot_hom_basic() {
        let s = schema();
        let mut a = Instance::new(Arc::clone(&s));
        a.insert_values(
            "Emp",
            [Value::str("Ada"), Value::str("IBM"), Value::Null(NullId(0))],
        );
        let mut b = Instance::new(Arc::clone(&s));
        b.insert_values(
            "Emp",
            [Value::str("Ada"), Value::str("IBM"), Value::str("18k")],
        );
        // Null can map to the constant.
        let h = snapshot_hom(&a, &b).unwrap();
        assert_eq!(h[&NullId(0)], Value::str("18k"));
        // But not the other way: constants are rigid.
        assert!(snapshot_hom(&b, &a).is_none());
    }

    #[test]
    fn snapshot_hom_needs_consistent_nulls() {
        let s = schema();
        // a: Emp(Ada, IBM, N0), Emp(Bob, IBM, N0) — same unknown salary.
        let mut a = Instance::new(Arc::clone(&s));
        a.insert_values(
            "Emp",
            [Value::str("Ada"), Value::str("IBM"), Value::Null(NullId(0))],
        );
        a.insert_values(
            "Emp",
            [Value::str("Bob"), Value::str("IBM"), Value::Null(NullId(0))],
        );
        // b: different salaries.
        let mut b = Instance::new(Arc::clone(&s));
        b.insert_values(
            "Emp",
            [Value::str("Ada"), Value::str("IBM"), Value::str("18k")],
        );
        b.insert_values(
            "Emp",
            [Value::str("Bob"), Value::str("IBM"), Value::str("13k")],
        );
        assert!(snapshot_hom(&a, &b).is_none());
        // With independent nulls it works.
        let mut a2 = Instance::new(Arc::clone(&s));
        a2.insert_values(
            "Emp",
            [Value::str("Ada"), Value::str("IBM"), Value::Null(NullId(0))],
        );
        a2.insert_values(
            "Emp",
            [Value::str("Bob"), Value::str("IBM"), Value::Null(NullId(1))],
        );
        assert!(snapshot_hom(&a2, &b).is_some());
    }

    #[test]
    fn snapshot_hom_empty_source() {
        let s = schema();
        let a = Instance::new(Arc::clone(&s));
        let mut b = Instance::new(Arc::clone(&s));
        b.insert(
            tdx_logic::RelId(0),
            row([Value::str("x"), Value::str("y"), Value::str("z")]),
        );
        assert!(snapshot_hom(&a, &b).is_some());
        assert!(snapshot_hom(&b, &a).is_none());
    }

    // ----- abstract level: the paper's Example 2 -----

    /// J₁: Emp(Ada, IBM, N) in db₀ and db₁ with the *same* null N.
    fn j1() -> AbstractInstance {
        let mut b = AbstractInstanceBuilder::new(schema());
        b.add(
            "Emp",
            vec![
                AValue::str("Ada"),
                AValue::str("IBM"),
                AValue::Rigid(NullId(100)),
            ],
            iv(0, 2),
        );
        b.build()
    }

    /// J₂: Emp(Ada, IBM, M₁) in db₀, Emp(Ada, IBM, M₂) in db₁ — fresh per
    /// point.
    fn j2() -> AbstractInstance {
        let mut b = AbstractInstanceBuilder::new(schema());
        b.add(
            "Emp",
            vec![
                AValue::str("Ada"),
                AValue::str("IBM"),
                AValue::PerPoint(NullId(200)),
            ],
            iv(0, 2),
        );
        b.build()
    }

    #[test]
    fn example2_no_hom_j1_to_j2() {
        // The rigid N would have to equal M₀ at time 0 and M₁ at time 1 —
        // impossible for a single global mapping.
        assert!(!abstract_hom(&j1(), &j2()));
    }

    #[test]
    fn example2_hom_j2_to_j1() {
        // Each Mᵢ maps to N pointwise.
        assert!(abstract_hom(&j2(), &j1()));
        assert!(!hom_equivalent(&j1(), &j2()));
    }

    #[test]
    fn rigid_to_per_point_allowed_on_single_point() {
        // If the rigid null occurs at exactly one time point, it is just one
        // labeled null and may map onto one member of a per-point family.
        let mut b = AbstractInstanceBuilder::new(schema());
        b.add(
            "Emp",
            vec![
                AValue::str("Ada"),
                AValue::str("IBM"),
                AValue::Rigid(NullId(5)),
            ],
            iv(3, 4),
        );
        let single = b.build();
        let mut b = AbstractInstanceBuilder::new(schema());
        b.add(
            "Emp",
            vec![
                AValue::str("Ada"),
                AValue::str("IBM"),
                AValue::PerPoint(NullId(9)),
            ],
            iv(3, 4),
        );
        let target = b.build();
        assert!(abstract_hom(&single, &target));
    }

    #[test]
    fn per_point_aligns_only_within_epoch() {
        // Source: family over [0,4). Target: families over [0,2) and [2,4)
        // with different bases — pointwise alignment still works because the
        // source epoch refines against the target's.
        let mut b = AbstractInstanceBuilder::new(schema());
        b.add(
            "Emp",
            vec![
                AValue::str("A"),
                AValue::str("B"),
                AValue::PerPoint(NullId(1)),
            ],
            iv(0, 4),
        );
        let src = b.build();
        let mut b = AbstractInstanceBuilder::new(schema());
        b.add(
            "Emp",
            vec![
                AValue::str("A"),
                AValue::str("B"),
                AValue::PerPoint(NullId(2)),
            ],
            iv(0, 2),
        );
        b.add(
            "Emp",
            vec![
                AValue::str("A"),
                AValue::str("B"),
                AValue::PerPoint(NullId(3)),
            ],
            iv(2, 4),
        );
        let tgt = b.build();
        assert!(abstract_hom(&src, &tgt));
        assert!(abstract_hom(&tgt, &src));
    }

    #[test]
    fn constants_block_homs() {
        let mut b = AbstractInstanceBuilder::new(schema());
        b.add(
            "Emp",
            vec![AValue::str("Ada"), AValue::str("IBM"), AValue::str("18k")],
            iv(0, 2),
        );
        let a = b.build();
        let mut b = AbstractInstanceBuilder::new(schema());
        b.add(
            "Emp",
            vec![AValue::str("Ada"), AValue::str("IBM"), AValue::str("20k")],
            iv(0, 2),
        );
        let c = b.build();
        assert!(!abstract_hom(&a, &c));
        assert!(!abstract_hom(&c, &a));
    }

    #[test]
    fn hom_fails_when_target_missing_epoch() {
        let mut b = AbstractInstanceBuilder::new(schema());
        b.add(
            "Emp",
            vec![AValue::str("A"), AValue::str("B"), AValue::str("C")],
            iv(0, 4),
        );
        let wide = b.build();
        let mut b = AbstractInstanceBuilder::new(schema());
        b.add(
            "Emp",
            vec![AValue::str("A"), AValue::str("B"), AValue::str("C")],
            iv(0, 2),
        );
        let narrow = b.build();
        assert!(!abstract_hom(&wide, &narrow));
        assert!(abstract_hom(&narrow, &wide));
    }

    #[test]
    fn empty_instance_maps_anywhere() {
        let s = schema();
        let empty = AbstractInstance::empty(Arc::clone(&s));
        assert!(abstract_hom(&empty, &j1()));
        assert!(abstract_hom(&empty, &j2()));
        assert!(!abstract_hom(&j1(), &empty));
    }
}
