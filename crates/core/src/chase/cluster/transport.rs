//! Transports: how protocol frames travel between the coordinator and a
//! partition server.
//!
//! A [`Transport`] is one coordinator-side endpoint — spawn happens through
//! a [`TransportSpawner`], which the coordinator also re-invokes to
//! *respawn* a dead server on its retry path. Two backends ship:
//!
//! * [`ChannelTransport`] — the in-process actor of the original engine:
//!   one server thread plus an `mpsc` channel pair, every frame still a
//!   serialized byte message. The fastest carrier, and the default.
//! * [`TcpTransport`] — a real out-of-process server: the spawner binds a
//!   loopback rendezvous listener, launches `tdx serve-partition --connect
//!   <addr>` as a child process, and speaks length-prefixed
//!   [`tdx_storage::codec`] frames over the accepted stream. When no `tdx`
//!   binary can be located (unit tests of a library crate, bench binaries),
//!   it degrades to an in-process thread serving the same TCP connection —
//!   same sockets, same frames, no child process — and says so via
//!   [`TcpPeer`].
//!
//! Durable sessions use a third spawner, [`DurableTcpSpawner`]: servers
//! run in *listen* mode, publish their addresses into the session's state
//! directory, and survive a coordinator crash — a restarted coordinator
//! reconnects instead of respawning and re-shipping.
//!
//! The backend is picked per chase through
//! [`ChaseOptions::transport`](crate::chase::concrete::ChaseOptions), the
//! `--transport` CLI flag, or the `TDX_CHASE_TRANSPORT` environment
//! variable (resolved by [`resolve_transport`]). Protocol bytes are
//! identical on every backend, which is why results are too — transports
//! carry frames, they never interpret them.

use super::protocol::{Message, Response};
use super::server::{publish_addr, serve_channel, serve_listener, serve_stream};
use std::io::{self, BufReader};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use tdx_storage::codec::{read_frame, write_frame};

/// Which transport backend a distributed chase runs on.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum TransportKind {
    /// In-process server threads over `mpsc` channel pairs.
    #[default]
    Channel,
    /// Out-of-process servers (or loopback server threads when no `tdx`
    /// binary is available) over TCP.
    Tcp,
}

impl TransportKind {
    /// Parses the `TDX_CHASE_TRANSPORT` / `--transport` spelling.
    pub fn parse(s: &str) -> Option<TransportKind> {
        let s = s.trim();
        if s.eq_ignore_ascii_case("channel") {
            Some(TransportKind::Channel)
        } else if s.eq_ignore_ascii_case("tcp") {
            Some(TransportKind::Tcp)
        } else {
            None
        }
    }
}

/// Resolves a transport request: an explicit choice wins; `None` falls back
/// to the `TDX_CHASE_TRANSPORT` environment variable (an unknown value is
/// reported once to stderr and ignored, like the numeric chase knobs), then
/// to [`TransportKind::Channel`].
pub fn resolve_transport(requested: Option<TransportKind>) -> TransportKind {
    if let Some(k) = requested {
        return k;
    }
    static WARNED: std::sync::Once = std::sync::Once::new();
    match std::env::var("TDX_CHASE_TRANSPORT") {
        Ok(v) => TransportKind::parse(&v).unwrap_or_else(|| {
            WARNED.call_once(|| {
                eprintln!(
                    "tdx: warning: ignoring unknown TDX_CHASE_TRANSPORT={v:?} \
                     (expected \"channel\" or \"tcp\"); using the channel transport"
                );
            });
            TransportKind::Channel
        }),
        Err(_) => TransportKind::Channel,
    }
}

/// One coordinator-side endpoint to one partition server: a reliable,
/// ordered byte-frame pipe. `send`/`recv` errors mean the server is gone
/// (the coordinator's retry path respawns through the
/// [`TransportSpawner`]); `shutdown` is the carrier-level teardown — join
/// the thread, reap the child — run *after* the protocol-level `Shutdown`
/// message.
pub trait Transport: Send {
    /// Ships one frame to the server.
    fn send(&mut self, frame: &[u8]) -> io::Result<()>;
    /// Receives the server's next frame.
    fn recv(&mut self) -> io::Result<Vec<u8>>;
    /// Bounds how long a single `send`/`recv` may block: past the
    /// deadline the call returns a `TimedOut`-kind error, which the
    /// coordinator classifies as a transport fault exactly like a dead
    /// carrier — this is how a *hung* (fail-slow) server enters the same
    /// respawn/quarantine path as a crashed one (see
    /// `docs/robustness.md`). `None` removes the bound. The default
    /// implementation ignores the request (infallible in-process test
    /// doubles have nothing to bound); real backends override it.
    fn set_deadline(&mut self, deadline: Option<Duration>) -> io::Result<()> {
        let _ = deadline;
        Ok(())
    }
    /// Tears the carrier down (best effort, idempotent).
    fn shutdown(&mut self);
    /// Abandons the carrier the way a crash would: closes it *without* a
    /// protocol `Shutdown`, without reaping child processes, without
    /// joining threads. The peer observes a bare EOF — exactly what it
    /// would see if the coordinator process were killed. Crash-simulation
    /// support for durable sessions; backends without a survivable peer
    /// just tear down.
    fn sever(&mut self) {
        self.shutdown();
    }
}

/// Spawns transports — and respawns them when the coordinator's retry path
/// replaces a dead server. `server` is the cluster-wide server index (for
/// thread/process naming and fault targeting); a spawned peer is always
/// blank and expects the protocol `Hello` next.
pub trait TransportSpawner: Send + Sync {
    /// Starts server `server`'s peer and returns the endpoint to it.
    fn spawn(&self, server: usize) -> io::Result<Box<dyn Transport>>;
    /// The backend this spawner provides (for traces and stats).
    fn kind(&self) -> TransportKind;
}

/// The spawner for `kind`'s default backend.
pub fn spawner_for(kind: TransportKind) -> Arc<dyn TransportSpawner> {
    match kind {
        TransportKind::Channel => Arc::new(ChannelSpawner),
        TransportKind::Tcp => Arc::new(TcpSpawner),
    }
}

fn gone(what: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::BrokenPipe,
        format!("partition server {what}"),
    )
}

// ---------------------------------------------------------------------------
// Channel backend

/// In-process backend: one server thread per spawn, frames over an `mpsc`
/// channel pair.
pub struct ChannelTransport {
    tx: Option<Sender<Vec<u8>>>,
    rx: Receiver<Vec<u8>>,
    join: Option<JoinHandle<()>>,
    /// Per-frame deadline on `recv` (sends on an unbounded `mpsc` never
    /// block, so only the receive side needs bounding).
    deadline: Option<Duration>,
}

/// Spawner of [`ChannelTransport`] endpoints.
pub struct ChannelSpawner;

impl TransportSpawner for ChannelSpawner {
    fn spawn(&self, server: usize) -> io::Result<Box<dyn Transport>> {
        let (req_tx, req_rx) = channel::<Vec<u8>>();
        let (resp_tx, resp_rx) = channel::<Vec<u8>>();
        let join = std::thread::Builder::new()
            .name(format!("tdx-part-server-{server}"))
            .spawn(move || serve_channel(req_rx, resp_tx))?;
        Ok(Box::new(ChannelTransport {
            tx: Some(req_tx),
            rx: resp_rx,
            join: Some(join),
            deadline: None,
        }))
    }

    fn kind(&self) -> TransportKind {
        TransportKind::Channel
    }
}

impl Transport for ChannelTransport {
    fn send(&mut self, frame: &[u8]) -> io::Result<()> {
        self.tx
            .as_ref()
            .ok_or_else(|| gone("already shut down"))?
            .send(frame.to_vec())
            .map_err(|_| gone("closed its channel"))
    }

    fn recv(&mut self) -> io::Result<Vec<u8>> {
        match self.deadline {
            None => self.rx.recv().map_err(|_| gone("closed its channel")),
            Some(d) => match self.rx.recv_timeout(d) {
                Ok(frame) => Ok(frame),
                Err(std::sync::mpsc::RecvTimeoutError::Timeout) => Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "partition server exceeded the frame deadline",
                )),
                Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
                    Err(gone("closed its channel"))
                }
            },
        }
    }

    fn set_deadline(&mut self, deadline: Option<Duration>) -> io::Result<()> {
        self.deadline = deadline;
        Ok(())
    }

    fn shutdown(&mut self) {
        // Dropping the sender unblocks a server waiting in `recv`; then the
        // thread exits and joins. A panicked server thread just yields a
        // poisoned join result, which teardown ignores.
        self.tx = None;
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }

    fn sever(&mut self) {
        // An in-process server cannot outlive its coordinator, so a
        // "crash" just drops the sender (the thread sees the closed
        // channel and exits) and detaches the join handle.
        self.tx = None;
        self.join = None;
    }
}

impl Drop for ChannelTransport {
    fn drop(&mut self) {
        self.shutdown();
    }
}

// ---------------------------------------------------------------------------
// TCP backend

/// What serves the far side of a [`TcpTransport`] connection.
enum TcpPeer {
    /// A real `tdx serve-partition` child process.
    Child(Child),
    /// The in-process fallback thread (no `tdx` binary found).
    Thread(Option<JoinHandle<()>>),
    /// A peer this transport does not own: a listen-mode server another
    /// (possibly dead) coordinator spawned and we reconnected to, or a
    /// peer deliberately abandoned by [`Transport::sever`]. It manages
    /// its own lifetime — protocol `Shutdown` or `--idle-exit`.
    Detached,
}

/// Out-of-process backend: length-prefixed codec frames over a loopback
/// TCP stream to a `tdx serve-partition` child process (or the thread
/// fallback — see the module docs).
pub struct TcpTransport {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    peer: TcpPeer,
}

/// Spawner of [`TcpTransport`] endpoints.
pub struct TcpSpawner;

/// Locates the `tdx` binary whose `serve-partition` subcommand hosts an
/// out-of-process server: `TDX_SERVE_BIN` wins, then the current executable
/// if it *is* `tdx`, then a `tdx` sibling of the current executable's
/// target directory (how integration tests and in-repo tools find the
/// freshly built CLI). `None` means no binary — callers fall back to the
/// in-process serving thread.
fn resolve_serve_bin() -> Option<PathBuf> {
    if let Ok(p) = std::env::var("TDX_SERVE_BIN") {
        let p = PathBuf::from(p);
        return p.is_file().then_some(p);
    }
    let exe = std::env::current_exe().ok()?;
    let stem = exe.file_stem()?.to_str()?;
    if stem == "tdx" {
        return Some(exe);
    }
    let mut dir = exe.parent()?;
    if dir.file_name().and_then(|n| n.to_str()) == Some("deps") {
        dir = dir.parent()?;
    }
    let cand = dir.join(format!("tdx{}", std::env::consts::EXE_SUFFIX));
    cand.is_file().then_some(cand)
}

/// How long spawn-time waits (the rendezvous accept, addr-file polls) may
/// block: the same `TDX_CHASE_DEADLINE_MS` knob that bounds per-frame
/// traffic, except that *disabling* deadlines falls back to the fixed
/// default rather than waiting forever — a spawn wait must always be
/// finite, or a server that never comes up wedges the coordinator before
/// the first frame is even sent.
fn spawn_wait_deadline() -> Duration {
    crate::chase::frame_deadline(None)
        .unwrap_or(Duration::from_millis(crate::chase::DEFAULT_DEADLINE_MS))
}

/// Accepts the server's rendezvous connection, polling so a hung peer
/// cannot wedge the coordinator. `child`: a child process to watch — if it
/// exits before connecting (wrong binary, crashed at startup), give up
/// immediately instead of waiting out the deadline.
fn accept_with_deadline(
    listener: &TcpListener,
    deadline: Duration,
    mut child: Option<&mut Child>,
) -> io::Result<TcpStream> {
    listener.set_nonblocking(true)?;
    // tdx-lint: allow(wall-clock): accept-timeout clock for spawning child servers; a timeout is an error path, not a result
    let t0 = Instant::now();
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                stream.set_nonblocking(false)?;
                stream.set_nodelay(true)?;
                return Ok(stream);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if let Some(child) = child.as_deref_mut() {
                    if matches!(child.try_wait(), Ok(Some(_)) | Err(_)) {
                        return Err(io::Error::new(
                            io::ErrorKind::ConnectionAborted,
                            "partition server process exited before connecting",
                        ));
                    }
                }
                if t0.elapsed() > deadline {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "partition server never connected back",
                    ));
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => return Err(e),
        }
    }
}

impl TransportSpawner for TcpSpawner {
    fn spawn(&self, server: usize) -> io::Result<Box<dyn Transport>> {
        // Preferred shape: a real child process. A binary that fails to
        // come up (stale build without `serve-partition`, exec failure)
        // degrades to the in-process serving thread below rather than
        // failing the chase — the protocol and framing are identical.
        if let Some(bin) = resolve_serve_bin() {
            let listener = TcpListener::bind(("127.0.0.1", 0))?;
            let addr = listener.local_addr()?;
            let child = Command::new(bin)
                .arg("serve-partition")
                .arg("--connect")
                .arg(addr.to_string())
                .stdin(Stdio::null())
                .spawn();
            if let Ok(mut child) = child {
                match accept_with_deadline(&listener, spawn_wait_deadline(), Some(&mut child)) {
                    Ok(stream) => {
                        let mut transport = TcpTransport {
                            reader: BufReader::new(stream.try_clone()?),
                            writer: stream,
                            peer: TcpPeer::Child(child),
                        };
                        // Protocol probe: one Ping round-trip proves the
                        // child speaks this build's protocol. A stale or
                        // foreign binary fails here and we degrade to the
                        // serving thread instead of poisoning the cluster.
                        let pong = transport
                            .send(&tdx_storage::codec::encode(&Message::Ping))
                            .and_then(|()| transport.recv())
                            .ok()
                            .and_then(|b| tdx_storage::codec::decode::<Response>(&b).ok());
                        if pong == Some(Response::Pong) {
                            return Ok(Box::new(transport));
                        }
                        transport.shutdown();
                    }
                    Err(_) => {
                        let _ = child.kill();
                        let _ = child.wait();
                    }
                }
            }
        }
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let join = std::thread::Builder::new()
            .name(format!("tdx-part-server-{server}-tcp"))
            .spawn(move || {
                if let Ok(stream) = TcpStream::connect(addr) {
                    let _ = serve_stream(stream);
                }
            })?;
        let stream = accept_with_deadline(&listener, spawn_wait_deadline(), None)?;
        Ok(Box::new(TcpTransport {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
            peer: TcpPeer::Thread(Some(join)),
        }))
    }

    fn kind(&self) -> TransportKind {
        TransportKind::Tcp
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, frame: &[u8]) -> io::Result<()> {
        write_frame(&mut self.writer, frame)
    }

    fn recv(&mut self) -> io::Result<Vec<u8>> {
        read_frame(&mut self.reader)
    }

    fn set_deadline(&mut self, deadline: Option<Duration>) -> io::Result<()> {
        // SO_RCVTIMEO/SO_SNDTIMEO are socket-level, so setting them
        // through the writer clone covers the buffered reader too. A
        // timed-out read can leave a partial frame in the buffer — the
        // stream is unusable afterwards, which is fine: the retry path
        // replaces the whole carrier.
        self.writer.set_read_timeout(deadline)?;
        self.writer.set_write_timeout(deadline)
    }

    fn shutdown(&mut self) {
        // Closing the socket unblocks the peer's read; the child then exits
        // on its own (waited with a bounded grace period before a kill),
        // the fallback thread just returns and joins.
        let _ = self.writer.shutdown(Shutdown::Both);
        match &mut self.peer {
            TcpPeer::Child(child) => {
                // tdx-lint: allow(wall-clock): bounded grace period before killing a child on drop; cleanup only
                let t0 = Instant::now();
                loop {
                    match child.try_wait() {
                        Ok(Some(_)) => return,
                        Ok(None) if t0.elapsed() > Duration::from_secs(2) => {
                            let _ = child.kill();
                            let _ = child.wait();
                            return;
                        }
                        Ok(None) => std::thread::sleep(Duration::from_millis(5)),
                        Err(_) => return,
                    }
                }
            }
            TcpPeer::Thread(join) => {
                if let Some(join) = join.take() {
                    let _ = join.join();
                }
            }
            TcpPeer::Detached => {}
        }
    }

    fn sever(&mut self) {
        // Close the socket (the peer sees EOF, as on a coordinator kill)
        // but leave the peer alive: a listen-mode server keeps its state
        // for the Resume handshake of the next coordinator.
        let _ = self.writer.shutdown(Shutdown::Both);
        // Dropping a `Child` handle does not kill the process.
        self.peer = TcpPeer::Detached;
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        self.shutdown();
    }
}

// ---------------------------------------------------------------------------
// Durable TCP backend (reconnect-capable)

/// Reconnect-capable TCP spawner for durable exchange sessions.
///
/// Where [`TcpSpawner`] rendezvouses with a `--connect` child whose life is
/// tied to this coordinator, `DurableTcpSpawner` runs servers in *listen*
/// mode and records where they listen: server `s` publishes its bound
/// address to `server-{s}.addr` inside `state_dir`. A spawn first tries to
/// **reconnect** to that address — if a server from a previous (crashed)
/// coordinator still listens there and answers a protocol probe, the
/// existing process is adopted with all its retained state, ready for the
/// coordinator's `Resume` handshake. Only when nothing (or something
/// unresponsive) is there does it launch a fresh `tdx serve-partition
/// --listen` child — with `--idle-exit` so an abandoned server eventually
/// reaps itself. With no `tdx` binary available it degrades to an
/// in-process *detached* listener thread, which equally survives transport
/// teardown and so still exercises the reconnect path.
pub struct DurableTcpSpawner {
    state_dir: PathBuf,
    idle_exit: Duration,
}

impl DurableTcpSpawner {
    /// A spawner persisting server addresses under `state_dir` (created if
    /// missing), with the default 5-minute idle self-exit for servers.
    pub fn new(state_dir: impl Into<PathBuf>) -> DurableTcpSpawner {
        DurableTcpSpawner {
            state_dir: state_dir.into(),
            idle_exit: Duration::from_secs(300),
        }
    }

    /// Overrides how long an idle (coordinator-less) server lingers before
    /// exiting on its own.
    pub fn idle_exit(mut self, limit: Duration) -> DurableTcpSpawner {
        self.idle_exit = limit;
        self
    }

    /// Path of the file server `server` publishes its listen address to.
    pub fn addr_file(&self, server: usize) -> PathBuf {
        self.state_dir.join(format!("server-{server}.addr"))
    }

    /// Attempts to adopt a surviving server at its published address.
    fn try_reconnect(&self, server: usize) -> Option<TcpTransport> {
        let addr: std::net::SocketAddr = std::fs::read_to_string(self.addr_file(server))
            .ok()?
            .trim()
            .parse()
            .ok()?;
        let stream = TcpStream::connect_timeout(&addr, Duration::from_millis(500)).ok()?;
        probe_stream(stream)
    }

    fn spawn_fresh(&self, server: usize) -> io::Result<TcpTransport> {
        std::fs::create_dir_all(&self.state_dir)?;
        let addr_path = self.addr_file(server);
        let _ = std::fs::remove_file(&addr_path);
        if let Some(bin) = resolve_serve_bin() {
            let child = Command::new(bin)
                .arg("serve-partition")
                .arg("--listen")
                .arg("127.0.0.1:0")
                .arg("--addr-file")
                .arg(&addr_path)
                .arg("--idle-exit")
                .arg(self.idle_exit.as_secs().max(1).to_string())
                .stdin(Stdio::null())
                .spawn();
            if let Ok(mut child) = child {
                match wait_addr_file(&addr_path, spawn_wait_deadline(), &mut child) {
                    Ok(addr) => {
                        let probed = TcpStream::connect_timeout(&addr, Duration::from_secs(2))
                            .ok()
                            .and_then(probe_stream);
                        if let Some(mut transport) = probed {
                            // Own the child: a clean teardown (protocol
                            // Shutdown, then carrier shutdown) reaps it; a
                            // sever leaves it alive for the successor.
                            transport.peer = TcpPeer::Child(child);
                            return Ok(transport);
                        }
                        let _ = child.kill();
                        let _ = child.wait();
                    }
                    Err(_) => {
                        let _ = child.kill();
                        let _ = child.wait();
                    }
                }
            }
        }
        // In-process fallback: a *detached* listener thread with the same
        // persistent state and idle exit, so reconnects work identically.
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        publish_addr(&listener, &addr_path)?;
        let addr = listener.local_addr()?;
        let idle = self.idle_exit;
        std::thread::Builder::new()
            .name(format!("tdx-part-server-{server}-listen"))
            .spawn(move || {
                let _ = serve_listener(listener, Some(idle));
            })?;
        let stream = TcpStream::connect_timeout(&addr, Duration::from_secs(2))?;
        probe_stream(stream).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::ConnectionAborted,
                "in-process listen server failed the protocol probe",
            )
        })
    }
}

impl TransportSpawner for DurableTcpSpawner {
    fn spawn(&self, server: usize) -> io::Result<Box<dyn Transport>> {
        if let Some(t) = self.try_reconnect(server) {
            return Ok(Box::new(t));
        }
        Ok(Box::new(self.spawn_fresh(server)?))
    }

    fn kind(&self) -> TransportKind {
        TransportKind::Tcp
    }
}

/// One `Ping` round-trip under a read timeout: proves the peer is alive
/// and speaks this build's protocol, without letting a wedged or stale
/// process hang the spawn. Returns the transport (peer detached — the
/// caller decides ownership) with the timeout cleared.
fn probe_stream(stream: TcpStream) -> Option<TcpTransport> {
    stream.set_nodelay(true).ok()?;
    stream.set_read_timeout(Some(Duration::from_secs(2))).ok()?;
    let mut transport = TcpTransport {
        reader: BufReader::new(stream.try_clone().ok()?),
        writer: stream,
        peer: TcpPeer::Detached,
    };
    let pong = transport
        .send(&tdx_storage::codec::encode(&Message::Ping))
        .and_then(|()| transport.recv())
        .ok()
        .and_then(|b| tdx_storage::codec::decode::<Response>(&b).ok());
    if pong != Some(Response::Pong) {
        return None;
    }
    // The probe proved the peer *live*; failing to clear the probe timeout
    // must not now report it dead. A transient `setsockopt` failure gets
    // one retry — only a socket that persistently refuses (i.e. is
    // genuinely broken) makes the probe fail.
    if transport.writer.set_read_timeout(None).is_err() {
        transport.writer.set_read_timeout(None).ok()?;
    }
    Some(transport)
}

/// Polls for a listen-mode server's published address, watching the child
/// so a startup crash fails fast instead of waiting out the deadline.
fn wait_addr_file(
    path: &std::path::Path,
    deadline: Duration,
    child: &mut Child,
) -> io::Result<std::net::SocketAddr> {
    // tdx-lint: allow(wall-clock): addr-file wait timeout while a child server boots; a timeout is an error path
    let t0 = Instant::now();
    loop {
        if let Ok(s) = std::fs::read_to_string(path) {
            if let Ok(addr) = s.trim().parse() {
                return Ok(addr);
            }
        }
        if matches!(child.try_wait(), Ok(Some(_)) | Err(_)) {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionAborted,
                "partition server process exited before publishing its address",
            ));
        }
        if t0.elapsed() > deadline {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "partition server never published its address",
            ));
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}

// ---------------------------------------------------------------------------
// Fault injection (test support)

/// Fault-injection spawner for the retry-path tests: wraps an inner
/// spawner and arms the transport of server `victim` to fail — and kill
/// its carrier — after `frames_before_failure` successful sends. The fault
/// trips once per injector; respawns of the victim get clean transports,
/// so a correct retry path converges.
pub struct FaultInjector {
    inner: Arc<dyn TransportSpawner>,
    victim: usize,
    frames_before_failure: usize,
    /// Consumed by the first spawn of the victim — later respawns are
    /// clean.
    armed: AtomicUsize,
    /// Set by the faulty transport when the failure actually fires.
    fired: Arc<AtomicUsize>,
}

impl FaultInjector {
    /// Arms one failure on `victim`'s transport after
    /// `frames_before_failure` sends.
    pub fn new(
        inner: Arc<dyn TransportSpawner>,
        victim: usize,
        frames_before_failure: usize,
    ) -> FaultInjector {
        FaultInjector {
            inner,
            victim,
            frames_before_failure,
            armed: AtomicUsize::new(1),
            fired: Arc::new(AtomicUsize::new(0)),
        }
    }

    /// Whether the armed fault has actually fired.
    pub fn tripped(&self) -> bool {
        self.fired.load(Ordering::SeqCst) != 0
    }
}

struct FaultTransport {
    inner: Box<dyn Transport>,
    remaining: usize,
    fired: Arc<AtomicUsize>,
}

impl Transport for FaultTransport {
    fn send(&mut self, frame: &[u8]) -> io::Result<()> {
        if self.remaining == 0 {
            // Kill the carrier mid-round: the peer dies with us, exactly
            // like a crashed server process.
            self.fired.store(1, Ordering::SeqCst);
            self.inner.shutdown();
            return Err(gone("killed by fault injection"));
        }
        self.remaining -= 1;
        self.inner.send(frame)
    }

    fn recv(&mut self) -> io::Result<Vec<u8>> {
        self.inner.recv()
    }

    fn set_deadline(&mut self, deadline: Option<Duration>) -> io::Result<()> {
        self.inner.set_deadline(deadline)
    }

    fn shutdown(&mut self) {
        self.inner.shutdown();
    }

    fn sever(&mut self) {
        self.inner.sever();
    }
}

impl TransportSpawner for FaultInjector {
    fn spawn(&self, server: usize) -> io::Result<Box<dyn Transport>> {
        let inner = self.inner.spawn(server)?;
        if server == self.victim
            && self
                .armed
                .compare_exchange(1, 0, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
        {
            return Ok(Box::new(FaultTransport {
                inner,
                remaining: self.frames_before_failure,
                fired: Arc::clone(&self.fired),
            }));
        }
        Ok(inner)
    }

    fn kind(&self) -> TransportKind {
        self.inner.kind()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chase::cluster::protocol::{Message, Response};
    use tdx_storage::codec::{decode, encode};

    fn ping(t: &mut Box<dyn Transport>) -> Response {
        t.send(&encode(&Message::Ping)).unwrap();
        decode::<Response>(&t.recv().unwrap()).unwrap()
    }

    #[test]
    fn channel_transport_answers_pings_and_shuts_down() {
        let mut t = ChannelSpawner.spawn(0).unwrap();
        assert_eq!(ping(&mut t), Response::Pong);
        t.send(&encode(&Message::Shutdown)).unwrap();
        assert_eq!(
            decode::<Response>(&t.recv().unwrap()).unwrap(),
            Response::Stopped
        );
        t.shutdown();
        // Idempotent; errors after teardown are BrokenPipe, not panics.
        t.shutdown();
        assert!(t.send(b"x").is_err());
    }

    #[test]
    fn tcp_transport_answers_pings_and_shuts_down() {
        // Works regardless of whether a tdx binary is found — the fallback
        // thread serves the same framed TCP protocol.
        let mut t = TcpSpawner.spawn(0).unwrap();
        assert_eq!(ping(&mut t), Response::Pong);
        t.send(&encode(&Message::Shutdown)).unwrap();
        assert_eq!(
            decode::<Response>(&t.recv().unwrap()).unwrap(),
            Response::Stopped
        );
        t.shutdown();
        t.shutdown();
    }

    #[test]
    fn transport_kind_parsing_and_resolution() {
        assert_eq!(TransportKind::parse("tcp"), Some(TransportKind::Tcp));
        assert_eq!(TransportKind::parse(" TCP "), Some(TransportKind::Tcp));
        assert_eq!(
            TransportKind::parse("channel"),
            Some(TransportKind::Channel)
        );
        assert_eq!(TransportKind::parse("carrier-pigeon"), None);
        // Explicit choice wins over the environment.
        assert_eq!(
            resolve_transport(Some(TransportKind::Tcp)),
            TransportKind::Tcp
        );
    }

    #[test]
    fn severed_channel_transport_detaches_without_hanging() {
        let mut t = ChannelSpawner.spawn(0).unwrap();
        assert_eq!(ping(&mut t), Response::Pong);
        t.sever();
        assert!(t.send(b"x").is_err());
        // Idempotent with the normal teardown that follows on drop.
        t.shutdown();
    }

    #[test]
    fn durable_tcp_spawner_reconnects_to_a_surviving_server() {
        let dir = std::env::temp_dir().join(format!("tdx-durable-spawn-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let spawner = DurableTcpSpawner::new(&dir).idle_exit(Duration::from_secs(30));
        let mut t = spawner.spawn(0).unwrap();
        assert_eq!(ping(&mut t), Response::Pong);
        let addr = std::fs::read_to_string(spawner.addr_file(0)).unwrap();

        // Crash the coordinator side: the carrier dies, the server lives.
        t.sever();
        drop(t);

        // A successor adopts the same server — the published address is
        // untouched (a fresh spawn would have rewritten it with a new
        // port) and the peer still answers.
        let mut t2 = spawner.spawn(0).unwrap();
        assert_eq!(std::fs::read_to_string(spawner.addr_file(0)).unwrap(), addr);
        assert_eq!(ping(&mut t2), Response::Pong);
        t2.send(&encode(&Message::Shutdown)).unwrap();
        let _ = t2.recv();
        t2.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn channel_deadline_turns_a_silent_server_into_a_timeout() {
        let mut t = ChannelSpawner.spawn(0).unwrap();
        t.set_deadline(Some(Duration::from_millis(20))).unwrap();
        // No request in flight: the server stays silent, and the deadline
        // turns the would-be-forever recv into a typed timeout.
        let err = t.recv().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        // The channel carrier survives a timeout; traffic still flows.
        assert_eq!(ping(&mut t), Response::Pong);
        t.set_deadline(None).unwrap();
        t.send(&encode(&Message::Shutdown)).unwrap();
        let _ = t.recv();
        t.shutdown();
    }

    #[test]
    fn tcp_deadline_turns_a_silent_server_into_a_timeout() {
        let mut t = TcpSpawner.spawn(0).unwrap();
        t.set_deadline(Some(Duration::from_millis(50))).unwrap();
        let err = t.recv().unwrap_err();
        // SO_RCVTIMEO surfaces as TimedOut or WouldBlock depending on the
        // platform; both are transport faults to the coordinator.
        assert!(
            matches!(
                err.kind(),
                io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
            ),
            "{err}"
        );
        t.shutdown();
    }

    #[test]
    fn fault_injector_trips_exactly_once() {
        let spawner = FaultInjector::new(Arc::new(ChannelSpawner), 0, 1);
        let mut t = spawner.spawn(0).unwrap();
        assert!(!spawner.tripped());
        assert_eq!(ping(&mut t), Response::Pong); // first frame passes
        assert!(t.send(&encode(&Message::Ping)).is_err()); // second trips
        assert!(spawner.tripped());
        // The respawn is clean.
        let mut t2 = spawner.spawn(0).unwrap();
        assert_eq!(ping(&mut t2), Response::Pong);
        assert_eq!(ping(&mut t2), Response::Pong);
        t2.send(&encode(&Message::Shutdown)).unwrap();
        let _ = t2.recv();
        t.shutdown();
        t2.shutdown();
    }
}
