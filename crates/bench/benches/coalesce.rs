//! Benchmarks for coalescing — the inverse of normalization, applied when a
//! fragmented chase result is materialized for storage (paper Section 2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use tdx_core::normalize::naive_normalize;
use tdx_core::semantics;
use tdx_workload::{EmploymentConfig, EmploymentWorkload};

fn bench_coalesce(c: &mut Criterion) {
    let mut group = c.benchmark_group("coalesce");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for persons in [10usize, 50, 200] {
        let w = EmploymentWorkload::generate(&EmploymentConfig {
            persons,
            horizon: 30,
            seed: 3,
            ..EmploymentConfig::default()
        });
        // A heavily fragmented instance: the worst realistic input.
        let fragmented = naive_normalize(&w.source);
        group.bench_with_input(
            BenchmarkId::new("temporal_instance", persons),
            &persons,
            |b, _| b.iter(|| fragmented.coalesced()),
        );
        group.bench_with_input(BenchmarkId::new("semantics", persons), &persons, |b, _| {
            b.iter(|| semantics(&w.source))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_coalesce);
criterion_main!(benches);
