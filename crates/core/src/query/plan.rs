//! Query plans for compiled temporal evaluation.
//!
//! A [`UnionPlan`] is the compiled form of a union of conjunctive temporal
//! queries: per disjunct, a join order over the body atoms chosen from
//! per-relation cardinality and bound-column selectivity (read off the
//! snapshot's eager indexes at compile time), a static access path per
//! atom (column probe, bound-variable probe, or interval-driven scan), and
//! precomputed per-column operations (constant check, variable check,
//! bind). The executor ([`super::compiled`]) interprets the plan with the
//! shared-interval intersection pushed into the join loop.
//!
//! Everything here is deterministic: costs are integers read from the
//! snapshot, ties break on the original atom order, and no wall-clock or
//! unseeded randomness feeds the costing. Fingerprints are FNV-1a over the
//! query's rendered text — stable within a process, which is all the plan
//! and fragment caches need.

use crate::error::{Result, TdxError};
use tdx_logic::{Atom, ConjunctiveQuery, Constant, RelId, UnionQuery, Var};
use tdx_storage::{StoreSnapshot, Value};

/// FNV-1a over a string — the stable in-process hash used for query and
/// body fingerprints.
pub fn fingerprint_str(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The fingerprint of a whole union query (cache key for plans and result
/// fragments).
pub fn query_fingerprint(q: &UnionQuery) -> u64 {
    fingerprint_str(&q.to_string())
}

/// The fingerprint of one conjunction body (cache key for memoized
/// query-body normalization).
pub fn body_fingerprint(atoms: &[Atom]) -> u64 {
    let rendered: Vec<String> = atoms.iter().map(|a| a.to_string()).collect();
    fingerprint_str(&rendered.join(" & "))
}

/// One head position of a compiled disjunct.
#[derive(Clone, Debug)]
pub enum HeadOut {
    /// A constant from the query head.
    Const(Constant),
    /// The value bound to variable slot `0` at emission time.
    Var(usize),
}

/// One per-column operation of an atom step, executed left to right.
#[derive(Clone, Debug)]
pub enum ColOp {
    /// The column must equal this constant.
    ConstEq(Value),
    /// The column must equal the value already bound to the slot.
    VarEq(usize),
    /// First occurrence of the variable: bind the slot to the column value.
    Bind(usize),
}

/// The access path chosen for one atom step.
#[derive(Clone, Debug)]
pub enum Access {
    /// Probe the per-column value index with a query constant.
    ConstCol {
        /// Which column to probe.
        col: usize,
        /// The constant to probe for.
        value: Value,
    },
    /// Probe the per-column value index with the value bound to a slot by
    /// an earlier atom.
    BoundCol {
        /// Which column to probe.
        col: usize,
        /// The slot whose runtime value keys the probe.
        slot: usize,
    },
    /// No bound column: candidates come from the interval index (overlap
    /// probe against the accumulated shared interval), degrading to a
    /// watermark-bounded scan when the interval is still unconstrained.
    IntervalDriven,
}

/// One atom of a compiled disjunct, in execution order.
#[derive(Clone, Debug)]
pub struct AtomStep {
    /// The relation the atom ranges over.
    pub rel: RelId,
    /// Candidate enumeration strategy.
    pub access: Access,
    /// Per-column checks/bindings (index = column).
    pub ops: Vec<ColOp>,
    /// Estimated candidate count at compile time (explain output).
    pub est: usize,
    /// Index of this atom in the query text (explain output).
    pub source_index: usize,
}

/// The compiled form of one conjunctive disjunct.
#[derive(Clone, Debug)]
pub struct DisjunctPlan {
    /// Atoms in chosen join order.
    pub atoms: Vec<AtomStep>,
    /// Head emission recipe.
    pub head: Vec<HeadOut>,
    /// Number of variable slots.
    pub var_count: usize,
}

/// The compiled form of a union of conjunctive queries.
#[derive(Clone, Debug)]
pub struct UnionPlan {
    /// One plan per disjunct, in query order.
    pub disjuncts: Vec<DisjunctPlan>,
    /// Output arity.
    pub arity: usize,
    /// Fingerprint of the source query (cache key).
    pub fingerprint: u64,
}

impl UnionPlan {
    /// A human-readable rendering of the chosen join orders and access
    /// paths (the `tdx query --explain` output).
    pub fn explain(&self) -> String {
        let mut out = String::new();
        for (d, plan) in self.disjuncts.iter().enumerate() {
            out.push_str(&format!("disjunct {d}:\n"));
            for step in &plan.atoms {
                let access = match &step.access {
                    Access::ConstCol { col, value } => {
                        format!("probe col {col} = {value}")
                    }
                    Access::BoundCol { col, slot } => {
                        format!("probe col {col} = slot {slot}")
                    }
                    Access::IntervalDriven => "interval scan".to_owned(),
                };
                out.push_str(&format!(
                    "  atom {} rel {} via {access} (est {})\n",
                    step.source_index, step.rel.0, step.est
                ));
            }
        }
        out
    }
}

/// Compiles a union query against a snapshot's statistics.
pub fn plan_union(snap: &StoreSnapshot, q: &UnionQuery) -> Result<UnionPlan> {
    let mut disjuncts = Vec::with_capacity(q.disjuncts().len());
    for cq in q.disjuncts() {
        disjuncts.push(plan_disjunct(snap, cq)?);
    }
    Ok(UnionPlan {
        disjuncts,
        arity: q.arity(),
        fingerprint: query_fingerprint(q),
    })
}

/// Variable slots in order of first occurrence across the body (original
/// atom order, so slot numbering is independent of the chosen join order).
fn slot_table(cq: &ConjunctiveQuery) -> Vec<Var> {
    let mut slots: Vec<Var> = Vec::new();
    for atom in &cq.body {
        for v in atom.vars() {
            if !slots.contains(&v) {
                slots.push(v);
            }
        }
    }
    slots
}

fn slot_of(slots: &[Var], v: Var) -> Option<usize> {
    slots.iter().position(|s| *s == v)
}

/// Cost estimate for placing `atom` next, given which slots earlier atoms
/// bound: the cheapest constant-column posting (or the relation size), then
/// discounted for each additional bound column the step can check.
fn est_cost(snap: &StoreSnapshot, rel: RelId, atom: &Atom, slots: &[Var], bound: &[bool]) -> usize {
    let mut base: Option<usize> = None;
    let mut bound_cols = 0usize;
    for (col, term) in atom.terms.iter().enumerate() {
        match term.as_const() {
            Some(c) => {
                let n = snap.col_count(rel, col, &Value::Const(c));
                base = Some(base.map_or(n, |b| b.min(n)));
            }
            None => {
                if let Some(slot) = term.as_var().and_then(|v| slot_of(slots, v)) {
                    if bound.get(slot).copied().unwrap_or(false) {
                        bound_cols += 1;
                    }
                }
            }
        }
    }
    let base = base.unwrap_or_else(|| snap.rel_len(rel));
    base / (1 + 4 * bound_cols)
}

fn plan_disjunct(snap: &StoreSnapshot, cq: &ConjunctiveQuery) -> Result<DisjunctPlan> {
    let schema = snap.schema();
    let slots = slot_table(cq);
    // Resolve relations up front.
    let mut rels = Vec::with_capacity(cq.body.len());
    for atom in &cq.body {
        let rel = schema.rel_id(atom.relation).ok_or_else(|| {
            TdxError::Invalid(format!(
                "query atom over unknown relation {}",
                atom.relation
            ))
        })?;
        if schema.relation(rel).arity() != atom.arity() {
            return Err(TdxError::Invalid(format!(
                "query atom {} has arity {}, relation has {}",
                atom,
                atom.arity(),
                schema.relation(rel).arity()
            )));
        }
        rels.push(rel);
    }

    // Greedy join order: repeatedly take the cheapest remaining atom.
    let mut remaining: Vec<usize> = (0..cq.body.len()).collect();
    let mut bound = vec![false; slots.len()];
    let mut atoms = Vec::with_capacity(cq.body.len());
    while !remaining.is_empty() {
        let mut best: Option<(usize, usize)> = None; // (cost, position)
        for (pos, &ai) in remaining.iter().enumerate() {
            let cost = est_cost(snap, rels[ai], &cq.body[ai], &slots, &bound);
            if best.is_none_or(|(c, _)| cost < c) {
                best = Some((cost, pos));
            }
        }
        let Some((est, pos)) = best else { break };
        let ai = remaining.remove(pos);
        let atom = &cq.body[ai];
        let rel = rels[ai];

        // Access path, judged against the *pre-atom* binding state.
        let mut access: Option<Access> = None;
        let mut best_const = usize::MAX;
        for (col, term) in atom.terms.iter().enumerate() {
            if let Some(c) = term.as_const() {
                let v = Value::Const(c);
                let n = snap.col_count(rel, col, &v);
                if n < best_const {
                    best_const = n;
                    access = Some(Access::ConstCol { col, value: v });
                }
            }
        }
        if access.is_none() {
            for (col, term) in atom.terms.iter().enumerate() {
                if let Some(slot) = term.as_var().and_then(|v| slot_of(&slots, v)) {
                    if bound.get(slot).copied().unwrap_or(false) {
                        access = Some(Access::BoundCol { col, slot });
                        break;
                    }
                }
            }
        }
        let access = access.unwrap_or(Access::IntervalDriven);

        // Per-column ops, updating the binding state as we go so repeated
        // variables inside one atom become equality checks.
        let mut ops = Vec::with_capacity(atom.terms.len());
        for term in &atom.terms {
            match term.as_const() {
                Some(c) => ops.push(ColOp::ConstEq(Value::Const(c))),
                None => {
                    let Some(slot) = term.as_var().and_then(|v| slot_of(&slots, v)) else {
                        return Err(TdxError::Invalid(format!(
                            "unresolvable term in query atom {atom}"
                        )));
                    };
                    if bound[slot] {
                        ops.push(ColOp::VarEq(slot));
                    } else {
                        bound[slot] = true;
                        ops.push(ColOp::Bind(slot));
                    }
                }
            }
        }
        atoms.push(AtomStep {
            rel,
            access,
            ops,
            est,
            source_index: ai,
        });
    }

    // Head recipe: constants pass through, variables read their slot.
    let mut head = Vec::with_capacity(cq.head.len());
    for term in &cq.head {
        match term.as_const() {
            Some(c) => head.push(HeadOut::Const(c)),
            None => {
                let slot = term
                    .as_var()
                    .and_then(|v| slot_of(&slots, v))
                    .filter(|s| bound.get(*s).copied().unwrap_or(false))
                    .ok_or_else(|| {
                        TdxError::Invalid(format!("unsafe head variable in query {cq}"))
                    })?;
                head.push(HeadOut::Var(slot));
            }
        }
    }

    Ok(DisjunctPlan {
        atoms,
        head,
        var_count: slots.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tdx_logic::{parse_query, RelationSchema, Schema};
    use tdx_storage::TemporalInstance;
    use tdx_temporal::Interval;

    fn snap() -> StoreSnapshot {
        let mut i = TemporalInstance::new(Arc::new(
            Schema::new(vec![
                RelationSchema::new("Big", &["a", "b"]),
                RelationSchema::new("Small", &["a"]),
            ])
            .unwrap(),
        ));
        for k in 0..50 {
            i.insert_strs("Big", &[&format!("X{k}"), "Acme"], Interval::new(0, 10));
        }
        i.insert_strs("Small", &["X1"], Interval::new(0, 10));
        StoreSnapshot::latest(Arc::new(i))
    }

    #[test]
    fn fingerprints_are_stable_and_distinct() {
        let q1: UnionQuery = parse_query("Q(a) :- Small(a)").unwrap().into();
        let q2: UnionQuery = parse_query("Q(a) :- Big(a, b)").unwrap().into();
        assert_eq!(query_fingerprint(&q1), query_fingerprint(&q1));
        assert_ne!(query_fingerprint(&q1), query_fingerprint(&q2));
    }

    #[test]
    fn join_order_starts_from_the_small_relation() {
        let q: UnionQuery = parse_query("Q(a, b) :- Big(a, b) & Small(a)")
            .unwrap()
            .into();
        let plan = plan_union(&snap(), &q).unwrap();
        let d = &plan.disjuncts[0];
        assert_eq!(d.atoms[0].source_index, 1, "{}", plan.explain());
        // The big atom then probes on the bound variable.
        assert!(
            matches!(d.atoms[1].access, Access::BoundCol { col: 0, .. }),
            "{}",
            plan.explain()
        );
    }

    #[test]
    fn constant_columns_become_index_probes() {
        let q: UnionQuery = parse_query("Q(a) :- Big(a, Acme)").unwrap().into();
        let plan = plan_union(&snap(), &q).unwrap();
        assert!(matches!(
            plan.disjuncts[0].atoms[0].access,
            Access::ConstCol { col: 1, .. }
        ));
    }

    #[test]
    fn unknown_relation_is_an_error() {
        let q: UnionQuery = parse_query("Q(a) :- Nope(a)").unwrap().into();
        assert!(plan_union(&snap(), &q).is_err());
    }

    #[test]
    fn repeated_variable_in_one_atom_checks_equality() {
        let q: UnionQuery = parse_query("Q(a) :- Big(a, a)").unwrap().into();
        let plan = plan_union(&snap(), &q).unwrap();
        let ops = &plan.disjuncts[0].atoms[0].ops;
        assert!(matches!(ops[0], ColOp::Bind(0)));
        assert!(matches!(ops[1], ColOp::VarEq(0)));
    }
}
