//! Incremental-exchange correctness: after every batch, the session's
//! materialized target must be hom-equivalent to a from-scratch c-chase of
//! the accumulated source — the oracle the whole incremental design is
//! argued against (see `docs/incremental.md`).

use proptest::prelude::*;
use tdx::core::{hom_equivalent, is_solution_concrete, semantics};
use tdx::workload::{
    employment_stream, nested_stream, random_stream, sparse_stream, BatchOrder, ClusteredConfig,
    DeltaStream, EmploymentConfig, RandomConfig, StreamConfig,
};
use tdx::{c_chase_with, ChaseOptions, DeltaBatch, IncrementalExchange, TdxError};

/// Replays a stream through a session, checking the oracle after every
/// batch. Returns `None` when the scenario's union has no solution (the
/// incremental session and the from-scratch chase must then *both* fail).
fn replay_checked(stream: &DeltaStream, opts: &ChaseOptions) -> Option<IncrementalExchange> {
    let mut session =
        IncrementalExchange::with_options(stream.mapping.clone(), opts.clone()).unwrap();
    let mut parts: Vec<&tdx::TemporalInstance> = vec![&stream.base];
    parts.extend(stream.batches.iter());
    for (i, part) in parts.into_iter().enumerate() {
        let scratch_source = session.source().clone_with(part);
        let scratch = c_chase_with(&scratch_source, &stream.mapping, opts);
        match session.apply(&DeltaBatch::from_instance(part)) {
            Ok(_) => {
                let scratch = scratch.unwrap_or_else(|e| {
                    panic!("batch {i}: incremental succeeded, from-scratch failed: {e}")
                });
                let inc = session.target();
                assert!(
                    hom_equivalent(&semantics(&scratch.target), &semantics(&inc)),
                    "batch {i}: incremental target diverged from from-scratch chase"
                );
                assert!(
                    is_solution_concrete(&session.source(), &inc, &stream.mapping).unwrap(),
                    "batch {i}: incremental target is not a solution"
                );
            }
            Err(TdxError::ChaseFailure { .. }) => {
                assert!(
                    matches!(scratch, Err(TdxError::ChaseFailure { .. })),
                    "batch {i}: incremental failed but from-scratch succeeded"
                );
                // The batch rolled back; the session keeps serving the
                // pre-batch fixpoint, so the stream cannot be continued —
                // report the scenario as failing.
                return None;
            }
            Err(other) => panic!("batch {i}: unexpected error {other:?}"),
        }
    }
    Some(session)
}

/// `TemporalInstance` helper: the union of `self` and another instance.
trait CloneWith {
    fn clone_with(&self, other: &tdx::TemporalInstance) -> tdx::TemporalInstance;
}

impl CloneWith for tdx::TemporalInstance {
    fn clone_with(&self, other: &tdx::TemporalInstance) -> tdx::TemporalInstance {
        let mut out = self.clone();
        for (rel, fact) in other.iter_all() {
            out.insert(rel, std::sync::Arc::clone(&fact.data), fact.interval);
        }
        out
    }
}

#[test]
fn employment_stream_matches_from_scratch_per_batch() {
    for (persons, coverage, order) in [
        (20usize, 1.0, BatchOrder::Uniform),
        (30, 0.6, BatchOrder::Uniform),
        (25, 0.8, BatchOrder::TailLocal),
    ] {
        let stream = employment_stream(
            &EmploymentConfig {
                persons,
                horizon: 30,
                salary_coverage: coverage,
                seed: persons as u64,
                ..EmploymentConfig::default()
            },
            &StreamConfig {
                batches: 4,
                batch_fraction: 0.05,
                order,
                ..StreamConfig::default()
            },
        );
        let session = replay_checked(&stream, &ChaseOptions::default())
            .expect("conflict-free employment stream");
        assert_eq!(session.stats().batches, 5); // base + 4 batches
        assert_eq!(session.stats().full_rechases, 0);
    }
}

#[test]
fn nested_and_sparse_streams_match_from_scratch() {
    let nested = nested_stream(
        12,
        &StreamConfig {
            batches: 3,
            batch_fraction: 0.1,
            ..StreamConfig::default()
        },
    );
    replay_checked(&nested, &ChaseOptions::default()).expect("nested stream is consistent");
    let sparse = sparse_stream(
        &ClusteredConfig::default(),
        &StreamConfig {
            batches: 3,
            batch_fraction: 0.1,
            order: BatchOrder::TailLocal,
            ..StreamConfig::default()
        },
    );
    replay_checked(&sparse, &ChaseOptions::default()).expect("sparse stream is consistent");
}

#[test]
fn incremental_honors_the_thread_matrix_options() {
    // The same configurations CI varies via TDX_CHASE_THREADS: the session
    // resolves threads through the same knob as the partitioned engine.
    let stream = employment_stream(
        &EmploymentConfig {
            persons: 20,
            horizon: 30,
            seed: 11,
            ..EmploymentConfig::default()
        },
        &StreamConfig {
            batches: 3,
            batch_fraction: 0.05,
            ..StreamConfig::default()
        },
    );
    for opts in [
        ChaseOptions::partitioned_parallel(0), // TDX_CHASE_THREADS / auto
        ChaseOptions::partitioned_parallel(1),
        ChaseOptions::partitioned_parallel(4),
        ChaseOptions::paper_faithful(),
    ] {
        replay_checked(&stream, &opts).expect("consistent stream");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For random workloads and random batch splits, replaying all batches
    /// incrementally is hom-equivalent to one from-scratch chase over the
    /// union — checked after *every* batch by the replay harness.
    #[test]
    fn random_workloads_and_splits_agree(
        seed in 0u64..2000,
        batches in 1usize..5,
        pct in 1usize..20,
    ) {
        let stream = random_stream(
            &RandomConfig {
                seed,
                facts: 24,
                horizon: 16,
                ..RandomConfig::default()
            },
            &StreamConfig {
                batches,
                batch_fraction: pct as f64 / 100.0,
                seed: seed ^ 0xbead,
                ..StreamConfig::default()
            },
        );
        // Failing scenarios are covered too: replay_checked asserts that
        // the incremental path fails exactly when from-scratch fails.
        let _ = replay_checked(&stream, &ChaseOptions::default());
    }

    /// Employment with salary gaps: nulls survive batches, egds merge them
    /// later, and the session stays equivalent throughout.
    #[test]
    fn sparse_salary_streams_agree(seed in 0u64..2000) {
        let stream = employment_stream(
            &EmploymentConfig {
                persons: 8,
                horizon: 20,
                salary_coverage: 0.5,
                seed,
                ..EmploymentConfig::default()
            },
            &StreamConfig {
                batches: 3,
                batch_fraction: 0.1,
                seed,
                ..StreamConfig::default()
            },
        );
        prop_assert!(replay_checked(&stream, &ChaseOptions::default()).is_some());
    }
}
