//! HR data consolidation at population scale.
//!
//! The motivation the paper opens with: organizations keep historical data
//! and need to exchange it across schemas. This example generates a company
//! population of career histories, exchanges it into the warehouse schema,
//! and asks temporal questions — who is certainly employed when, churn
//! between companies, and how normalization/coalescing affect storage.
//!
//! ```text
//! cargo run --release --example employment_history
//! ```

use tdx::core::verify::is_solution_concrete;
use tdx::workload::{EmploymentConfig, EmploymentWorkload};
use tdx::{parse_query, ChaseOptions, DataExchange, UnionQuery};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = EmploymentConfig {
        persons: 60,
        companies: 8,
        horizon: 40,
        seed: 2024,
        ..EmploymentConfig::default()
    };
    let w = EmploymentWorkload::generate(&cfg);
    println!(
        "generated {} persons, {} source facts over a {}-point timeline",
        cfg.persons,
        w.source.total_len(),
        cfg.horizon
    );

    let engine = DataExchange::new(w.mapping).with_options(ChaseOptions::default());
    let result = engine.exchange(&w.source)?;
    println!(
        "c-chase: {} normalized source facts, {} tgd steps, {} egd rounds → {} target facts \
         ({} unknown salaries)",
        result.stats.source_facts_normalized,
        result.stats.tgd_steps,
        result.stats.egd_rounds,
        result.stats.target_facts_out,
        result.target.nulls().len(),
    );
    assert!(is_solution_concrete(
        &w.source,
        &result.target,
        engine.mapping()
    )?);

    // Storage: the chase result is fragmented; coalescing shrinks it.
    let coalesced = result.target.coalesced();
    println!(
        "storage: {} fragmented facts coalesce to {}",
        result.target.total_len(),
        coalesced.total_len()
    );

    // Certain answers: salaries known in every possible world.
    let q: UnionQuery = parse_query("Q(n, s) :- Emp(n, c, s)")?.into();
    let salaries = engine.certain_answers(&w.source, &q)?;
    println!(
        "certain salary tuples: {} (sample at t=20: {})",
        salaries.len(),
        salaries.at(20).len()
    );

    // Temporal join: colleagues — pairs at the same company at the same time.
    let colleagues: UnionQuery = parse_query("Q(a, b, c) :- Emp(a, c, s1) & Emp(b, c, s2)")?.into();
    let pairs = engine.certain_answers(&w.source, &colleagues)?;
    let proper_pairs = pairs.rows().filter(|(t, _)| t[0] != t[1]).count();
    println!("colleague pairs (certain, any time): {proper_pairs}");

    // Cross-check the concrete route against the abstract one on a spot
    // query — Corollary 22 in action.
    let abs = engine.certain_answers_abstract(&w.source, &q)?;
    assert_eq!(salaries.epochs(), abs);
    println!("concrete and abstract certain-answer routes agree ✓");
    Ok(())
}
