//! Temporal exchange of medical records — with a data conflict.
//!
//! The paper lists medical systems among the applications needing temporal
//! data exchange (Section 1). Two clinic feeds are exchanged into a patient
//! registry; an egd enforces that a patient has one attending physician at
//! any time. A double-booking in the sources makes the chase fail — which,
//! by Theorem 19(2), *proves* no consistent registry exists — and the
//! example shows how the failure pinpoints the conflict so it can be
//! repaired.
//!
//! ```text
//! cargo run --example medical_records
//! ```

use tdx::{parse_mapping, parse_query, DataExchange, Interval, TdxError, UnionQuery};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let engine = DataExchange::new(parse_mapping(
        "source {
            Admitted(patient, ward)
            Attending(patient, doctor)
            Diagnosis(patient, code)
         }
         target {
            Registry(patient, ward, doctor)
            Condition(patient, code)
         }
         tgd adm: Admitted(p, w) -> exists d . Registry(p, w, d)
         tgd att: Admitted(p, w) & Attending(p, d) -> Registry(p, w, d)
         tgd dia: Diagnosis(p, c) -> Condition(p, c)
         egd one_doctor: Registry(p, w, d) & Registry(p, w2, d2) -> d = d2",
    )?);

    let mut source = engine.new_source();
    // Days 1–14: Rivera in ward A under Dr. House; moved to B on day 8.
    source.insert_strs("Admitted", &["Rivera", "WardA"], Interval::new(1, 8));
    source.insert_strs("Admitted", &["Rivera", "WardB"], Interval::new(8, 15));
    source.insert_strs("Attending", &["Rivera", "DrHouse"], Interval::new(1, 10));
    // Days 3–9: Chen admitted, attending doctor unknown at first.
    source.insert_strs("Admitted", &["Chen", "WardA"], Interval::new(3, 9));
    source.insert_strs("Attending", &["Chen", "DrGrey"], Interval::new(5, 9));
    source.insert_strs("Diagnosis", &["Rivera", "J18.9"], Interval::new(1, 15));
    source.insert_strs("Diagnosis", &["Chen", "I10"], Interval::from(3));

    // The double-booking: a second attending for Rivera on days 6–9.
    source.insert_strs("Attending", &["Rivera", "DrWho"], Interval::new(6, 9));

    match engine.exchange(&source) {
        Err(TdxError::ChaseFailure {
            dependency,
            left,
            right,
            interval,
        }) => {
            println!("no consistent registry exists!");
            println!(
                "  egd `{dependency}` clashes: {left} vs {right} during {}",
                interval.expect("concrete failure carries its interval")
            );
            println!("  (Theorem 19(2): a failing c-chase means *no* solution at all)\n");
        }
        other => {
            other?;
            unreachable!("the double-booking must fail the chase");
        }
    }

    // Repair: the second booking was a data-entry error — drop it.
    let mut repaired = engine.new_source();
    for (rel, fact) in source.iter_all() {
        let is_bad = source.schema().relation(rel).name().as_str() == "Attending"
            && fact.data[1] == tdx::Value::str("DrWho");
        if !is_bad {
            repaired.insert(rel, fact.data.clone(), fact.interval);
        }
    }
    let solution = engine.exchange(&repaired)?;
    println!("repaired feed exchanges cleanly:\n{}", solution.target);

    // When was Rivera *certainly* under Dr. House?
    let q: UnionQuery = parse_query("Q(w) :- Registry(Rivera, w, DrHouse)")?.into();
    let answers = engine.certain_answers(&repaired, &q)?;
    println!("Rivera under DrHouse, by ward:\n{answers}");

    // Chen's doctor before day 5 is an interval-annotated null: present in
    // the registry, absent from certain answers.
    let q: UnionQuery = parse_query("Q(d) :- Registry(Chen, w, d)")?.into();
    let answers = engine.certain_answers(&repaired, &q)?;
    assert!(answers.at(4).is_empty());
    assert!(!answers.at(6).is_empty());
    println!("Chen's doctor is unknown before day 5 — exactly as the data says.");
    Ok(())
}
