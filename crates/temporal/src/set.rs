//! Coalesced sets of intervals.
//!
//! An [`IntervalSet`] is the canonical representation of an arbitrary set of
//! time points as a sorted sequence of pairwise disjoint, non-adjacent
//! intervals. It is the value-level counterpart of the paper's *coalesced*
//! concrete instances (Section 2): any abstract temporal extent has exactly
//! one such representation, so equality of interval sets is equality of the
//! sets of time points they denote.

use crate::interval::Interval;
use crate::point::{Endpoint, TimePoint};
use std::fmt;

/// A set of time points stored as sorted, disjoint, non-adjacent intervals.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct IntervalSet {
    /// Invariant: sorted by start; for consecutive `a`, `b`:
    /// `a.end < Fin(b.start)` (strictly separated — disjoint and non-adjacent).
    ivs: Vec<Interval>,
}

impl IntervalSet {
    /// The empty set.
    #[inline]
    pub fn empty() -> Self {
        IntervalSet { ivs: Vec::new() }
    }

    /// The set holding a single interval.
    #[inline]
    pub fn singleton(iv: Interval) -> Self {
        IntervalSet { ivs: vec![iv] }
    }

    /// Builds a set from arbitrary (unsorted, possibly overlapping) intervals.
    pub fn from_intervals<I: IntoIterator<Item = Interval>>(iter: I) -> Self {
        let mut ivs: Vec<Interval> = iter.into_iter().collect();
        ivs.sort();
        let mut out: Vec<Interval> = Vec::with_capacity(ivs.len());
        for iv in ivs {
            match out.last_mut() {
                Some(last) if last.overlaps(&iv) || last.adjacent(&iv) => {
                    *last = last.join(&iv).expect("overlapping/adjacent intervals join");
                }
                _ => out.push(iv),
            }
        }
        IntervalSet { ivs: out }
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ivs.is_empty()
    }

    /// The coalesced intervals, in ascending order.
    #[inline]
    pub fn intervals(&self) -> &[Interval] {
        &self.ivs
    }

    /// Number of maximal intervals (not time points).
    #[inline]
    pub fn span_count(&self) -> usize {
        self.ivs.len()
    }

    /// Total number of time points, or `None` if infinite.
    pub fn cardinality(&self) -> Option<u64> {
        let mut total = 0u64;
        for iv in &self.ivs {
            total += iv.len()?;
        }
        Some(total)
    }

    /// Membership test.
    pub fn contains(&self, t: TimePoint) -> bool {
        // Binary search on start.
        let idx = self.ivs.partition_point(|iv| iv.start() <= t);
        idx > 0 && self.ivs[idx - 1].contains(t)
    }

    /// Whether `iv` is entirely inside the set.
    pub fn covers(&self, iv: &Interval) -> bool {
        let idx = self.ivs.partition_point(|x| x.start() <= iv.start());
        idx > 0 && self.ivs[idx - 1].covers(iv)
    }

    /// Inserts one interval, merging as needed.
    pub fn insert(&mut self, iv: Interval) {
        // Fast path: append after the last interval.
        if let Some(last) = self.ivs.last() {
            if Endpoint::Fin(iv.start()) > last.end() {
                self.ivs.push(iv);
                return;
            }
        } else {
            self.ivs.push(iv);
            return;
        }
        let mut merged = iv;
        let mut out = Vec::with_capacity(self.ivs.len() + 1);
        let mut placed = false;
        for &cur in &self.ivs {
            if placed {
                out.push(cur);
            } else if let Some(j) = merged.join(&cur) {
                merged = j;
            } else if cur.start() > merged.start() {
                out.push(merged);
                out.push(cur);
                placed = true;
            } else {
                out.push(cur);
            }
        }
        if !placed {
            out.push(merged);
        }
        self.ivs = out;
    }

    /// Set union.
    pub fn union(&self, other: &IntervalSet) -> IntervalSet {
        IntervalSet::from_intervals(self.ivs.iter().chain(other.ivs.iter()).copied())
    }

    /// Set intersection.
    pub fn intersect(&self, other: &IntervalSet) -> IntervalSet {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.ivs.len() && j < other.ivs.len() {
            if let Some(iv) = self.ivs[i].intersect(&other.ivs[j]) {
                out.push(iv);
            }
            if self.ivs[i].end() <= other.ivs[j].end() {
                i += 1;
            } else {
                j += 1;
            }
        }
        IntervalSet { ivs: out }
    }

    /// Set difference `self \ other` — a linear two-pointer sweep over the
    /// two sorted interval lists.
    pub fn difference(&self, other: &IntervalSet) -> IntervalSet {
        let mut out: Vec<Interval> = Vec::new();
        let mut j = 0usize;
        for iv in &self.ivs {
            let mut start = iv.start();
            let end = iv.end();
            // Skip subtrahend intervals entirely before this one. `j` never
            // retreats: both lists are ascending and strictly separated.
            while j < other.ivs.len() && other.ivs[j].end() <= Endpoint::Fin(start) {
                j += 1;
            }
            let mut k = j;
            let mut fully_consumed = false;
            while k < other.ivs.len() {
                let o = &other.ivs[k];
                if end <= Endpoint::Fin(o.start()) {
                    break; // o lies beyond the current interval
                }
                if o.start() > start {
                    out.push(Interval::new(start, o.start()));
                }
                match o.end() {
                    Endpoint::Inf => {
                        fully_consumed = true;
                        break;
                    }
                    Endpoint::Fin(oe) => {
                        if Endpoint::Fin(oe) >= end {
                            fully_consumed = true;
                            break;
                        }
                        start = start.max(oe);
                        k += 1;
                    }
                }
            }
            if !fully_consumed && Endpoint::Fin(start) < end {
                out.push(match end {
                    Endpoint::Fin(e) => Interval::new(start, e),
                    Endpoint::Inf => Interval::from(start),
                });
            }
        }
        // Output pieces are ascending and at least as separated as their
        // source intervals, so the invariant holds without re-coalescing.
        IntervalSet { ivs: out }
    }

    /// Complement within `[0, ∞)`.
    pub fn complement(&self) -> IntervalSet {
        IntervalSet::singleton(Interval::all()).difference(self)
    }

    /// Iterate intervals.
    pub fn iter(&self) -> impl Iterator<Item = &Interval> {
        self.ivs.iter()
    }
}

impl FromIterator<Interval> for IntervalSet {
    fn from_iter<T: IntoIterator<Item = Interval>>(iter: T) -> Self {
        IntervalSet::from_intervals(iter)
    }
}

impl From<Interval> for IntervalSet {
    fn from(iv: Interval) -> Self {
        IntervalSet::singleton(iv)
    }
}

impl fmt::Display for IntervalSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, iv) in self.ivs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{iv}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Debug for IntervalSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(s: u64, e: u64) -> Interval {
        Interval::new(s, e)
    }

    #[test]
    fn from_intervals_coalesces() {
        let s = IntervalSet::from_intervals([iv(3, 5), iv(0, 2), iv(2, 3)]);
        assert_eq!(s.intervals(), &[iv(0, 5)]);
        let s = IntervalSet::from_intervals([iv(0, 2), iv(3, 5)]);
        assert_eq!(s.intervals(), &[iv(0, 2), iv(3, 5)]);
        let s = IntervalSet::from_intervals([iv(0, 4), iv(2, 6), Interval::from(6)]);
        assert_eq!(s.intervals(), &[Interval::from(0)]);
    }

    #[test]
    fn insert_keeps_invariant() {
        let mut s = IntervalSet::empty();
        s.insert(iv(10, 12));
        s.insert(iv(0, 2));
        s.insert(iv(2, 4)); // adjacent to [0,2)
        s.insert(iv(5, 9));
        s.insert(iv(8, 10)); // bridges [5,9) and [10,12)
        assert_eq!(s.intervals(), &[iv(0, 4), iv(5, 12)]);
        s.insert(iv(4, 5)); // bridges everything
        assert_eq!(s.intervals(), &[iv(0, 12)]);
    }

    #[test]
    fn contains_and_covers() {
        let s = IntervalSet::from_intervals([iv(0, 3), iv(5, 8)]);
        assert!(s.contains(0));
        assert!(s.contains(2));
        assert!(!s.contains(3));
        assert!(!s.contains(4));
        assert!(s.contains(7));
        assert!(!s.contains(8));
        assert!(s.covers(&iv(5, 8)));
        assert!(s.covers(&iv(6, 7)));
        assert!(!s.covers(&iv(2, 6)));
    }

    #[test]
    fn union_intersection_difference() {
        let a = IntervalSet::from_intervals([iv(0, 5), iv(10, 15)]);
        let b = IntervalSet::from_intervals([iv(3, 12)]);
        assert_eq!(a.union(&b).intervals(), &[iv(0, 15)]);
        assert_eq!(a.intersect(&b).intervals(), &[iv(3, 5), iv(10, 12)]);
        assert_eq!(a.difference(&b).intervals(), &[iv(0, 3), iv(12, 15)]);
        assert_eq!(b.difference(&a).intervals(), &[iv(5, 10)]);
    }

    #[test]
    fn complement() {
        let s = IntervalSet::from_intervals([iv(2, 4), Interval::from(8)]);
        assert_eq!(s.complement().intervals(), &[iv(0, 2), iv(4, 8)]);
        assert_eq!(
            IntervalSet::empty().complement().intervals(),
            &[Interval::all()]
        );
        assert!(IntervalSet::singleton(Interval::all())
            .complement()
            .is_empty());
    }

    #[test]
    fn cardinality() {
        let s = IntervalSet::from_intervals([iv(0, 3), iv(5, 8)]);
        assert_eq!(s.cardinality(), Some(6));
        let s = IntervalSet::from_intervals([iv(0, 3), Interval::from(9)]);
        assert_eq!(s.cardinality(), None);
        assert_eq!(IntervalSet::empty().cardinality(), Some(0));
    }

    #[test]
    fn intersection_with_infinite_tails() {
        let a = IntervalSet::singleton(Interval::from(2014));
        let b = IntervalSet::singleton(Interval::from(2016));
        assert_eq!(a.intersect(&b).intervals(), &[Interval::from(2016)]);
    }

    #[test]
    fn display() {
        let s = IntervalSet::from_intervals([iv(0, 3), Interval::from(9)]);
        assert_eq!(s.to_string(), "{[0, 3), [9, ∞)}");
    }
}
