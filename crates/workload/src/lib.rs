//! Synthetic workloads for temporal data exchange.
//!
//! The paper evaluates nothing on public data — its figures are worked
//! examples and its performance claims are analytic. This crate synthesizes
//! the inputs the experiment harness and benchmarks need:
//!
//! * [`employment`] — populations of career histories over the paper's
//!   running `E`/`S` → `Emp` mapping (Figures 1–9 writ large), with optional
//!   injected salary conflicts to exercise chase failure;
//! * [`random`] — random schemas, mappings and temporal instances for
//!   property-style validation of Corollary 20 on inputs nobody hand-picked;
//! * [`adversarial`] — the nested-interval family realizing Theorem 13's
//!   `O(n²)` normalization blow-up;
//! * [`sparse`] — clustered workloads where schema-aware normalization
//!   (Algorithm 1) fragments little while naïve normalization fragments
//!   everything (the Section 4.2 trade-off).
//!
//! All generators are deterministic given their seed.

#![warn(missing_docs)]

pub mod adversarial;
pub mod employment;
pub mod random;
pub mod sparse;
pub mod stream;

pub use adversarial::{nested_intervals, nested_mapping};
pub use employment::{figure4_source, paper_mapping, EmploymentConfig, EmploymentWorkload};
pub use random::{RandomConfig, RandomWorkload};
pub use sparse::{clustered_instance, ClusteredConfig};
pub use stream::{
    employment_stream, nested_stream, random_stream, sparse_stream, split_stream, BatchOrder,
    DeltaStream, StreamConfig,
};
