//! Normalization of concrete instances (paper Section 4.2).
//!
//! To check a dependency whose atoms share the temporal variable `t` against
//! a concrete instance, time intervals must "behave as constants": the
//! instance must have the **normalization property** w.r.t. the dependency's
//! left-hand side, which Theorem 11 proves equivalent to the **empty
//! intersection property** (Definition 10). Both normalization algorithms of
//! the paper fragment facts until that property holds:
//!
//! * [`naive_normalize`] — fragment every fact at every distinct endpoint of
//!   the instance; `O(n log n)` but oblivious to the schema mapping, so it
//!   can produce many unnecessary fragments (Figure 6);
//! * [`normalize`] — Algorithm 1 `norm(I_c, Φ⁺)`: only facts that jointly
//!   satisfy some conjunction `φ∗ ∈ N(Φ⁺)` with overlapping intervals are
//!   grouped (merging overlapping groups), and each group is fragmented at
//!   its own endpoints only (Figures 5, 7→8).

use crate::error::Result;
use std::collections::BTreeSet;
use std::sync::Arc;
use tdx_logic::{Atom, RelId};
use tdx_storage::fxhash::{FxHashMap, FxHashSet};
use tdx_storage::{SearchOptions, TemporalInstance, TemporalMode};
use tdx_temporal::{fragment_interval, Breakpoints, Interval};

/// A fact identity inside one instance: `(relation, row index)`.
pub type FactRef = (RelId, u32);

/// Fragments **every** fact at **every** distinct start/end point of the
/// instance — the paper's naïve normalization (`Φ⁺ = ∅` grouping).
pub fn naive_normalize(ic: &TemporalInstance) -> TemporalInstance {
    let bps = ic.endpoints();
    let mut out = TemporalInstance::new(ic.schema_arc());
    for (rel, fact) in ic.iter_all() {
        for iv in fragment_interval(&fact.interval, &bps) {
            out.insert(rel, Arc::clone(&fact.data), iv);
        }
    }
    out
}

/// The groups computed by Algorithm 1 before fragmentation: maximal merged
/// sets of facts that co-occur in the image of some `φ∗ ∈ N(Φ⁺)` with
/// non-empty interval intersection. Exposed for tests and the experiment
/// harness (Example 14 inspects `S` and `S∩`).
pub fn candidate_groups(
    ic: &TemporalInstance,
    conjunctions: &[&[Atom]],
) -> Result<Vec<BTreeSet<FactRef>>> {
    candidate_groups_with(ic, conjunctions, SearchOptions::default())
}

/// [`candidate_groups`] with explicit search options. With indexes enabled
/// the `FreeOverlapping` searches probe the store's interval-endpoint index
/// (overlap candidates) instead of scanning whole relations; with indexes
/// disabled this is the paper-literal nested-loop search.
pub fn candidate_groups_with(
    ic: &TemporalInstance,
    conjunctions: &[&[Atom]],
    options: SearchOptions,
) -> Result<Vec<BTreeSet<FactRef>>> {
    // Step 1 (line 3): S = all images of some φ∗ with ⋂ f[T] ≠ ∅.
    // `TemporalMode::FreeOverlapping` enforces the intersection condition
    // during the search. Images are deduplicated as sorted vectors — cheaper
    // to hash than tree sets on this hot path.
    let mut sets: Vec<Vec<FactRef>> = Vec::new();
    let mut seen: FxHashSet<Vec<FactRef>> = FxHashSet::default();
    for atoms in conjunctions {
        ic.find_matches_with(
            atoms,
            TemporalMode::FreeOverlapping,
            &[],
            None,
            options,
            |m| {
                let mut image: Vec<FactRef> = m.atom_rows().to_vec();
                image.sort_unstable();
                image.dedup();
                if seen.insert(image.clone()) {
                    sets.push(image);
                }
                true
            },
        )?;
    }
    Ok(merge_image_sets(&sets))
}

/// Path-compressing find over an index-keyed union-find — the shared
/// primitive behind Algorithm 1's group merge, the shared-base alignment
/// of the chase engines, and the fact-connectivity passes.
pub(crate) fn uf_find(parent: &mut Vec<usize>, i: usize) -> usize {
    if parent[i] != i {
        let r = uf_find(parent, parent[i]);
        parent[i] = r;
    }
    parent[i]
}

/// Steps 2–3 of Algorithm 1 (lines 4–10): merges images sharing a fact
/// until the resulting groups are disjoint. Union-find keyed by set index,
/// driven by fact membership. Also the reconciliation step of the
/// partitioned chase, whose workers discover images per timeline partition
/// and merge them here.
pub fn merge_image_sets(sets: &[Vec<FactRef>]) -> Vec<BTreeSet<FactRef>> {
    let mut parent: Vec<usize> = (0..sets.len()).collect();
    let mut owner: FxHashMap<FactRef, usize> = FxHashMap::default();
    for (i, set) in sets.iter().enumerate() {
        for &f in set {
            match owner.get(&f) {
                Some(&j) => {
                    let (ri, rj) = (uf_find(&mut parent, i), uf_find(&mut parent, j));
                    if ri != rj {
                        parent[ri] = rj;
                    }
                }
                None => {
                    owner.insert(f, i);
                }
            }
        }
    }
    let mut merged: FxHashMap<usize, BTreeSet<FactRef>> = FxHashMap::default();
    for (i, set) in sets.iter().enumerate() {
        let r = uf_find(&mut parent, i);
        merged.entry(r).or_default().extend(set.iter().copied());
    }
    let mut groups: Vec<BTreeSet<FactRef>> = merged.into_values().collect();
    groups.sort_by(|a, b| a.iter().next().cmp(&b.iter().next()));
    groups
}

/// Algorithm 1 `norm(I_c, Φ⁺)`: fragments exactly the facts in the merged
/// candidate groups, each at the distinct endpoints of its own group
/// (`TP_Δ`). Facts outside every group are copied unchanged.
///
/// The output has the empty intersection property w.r.t. `conjunctions`
/// (Theorem 15) and represents the same abstract instance (fragmentation
/// preserves `⟦·⟧`; null bases are kept, so the fragments of an annotated
/// null `N^[s,e)` still denote the family `⟨N_s, …, N_{e−1}⟩`).
pub fn normalize(ic: &TemporalInstance, conjunctions: &[&[Atom]]) -> Result<TemporalInstance> {
    normalize_with(ic, conjunctions, SearchOptions::default())
}

/// [`normalize`] with explicit search options (see
/// [`candidate_groups_with`]).
pub fn normalize_with(
    ic: &TemporalInstance,
    conjunctions: &[&[Atom]],
    options: SearchOptions,
) -> Result<TemporalInstance> {
    let groups = candidate_groups_with(ic, conjunctions, options)?;
    normalize_with_groups(ic, &groups)
}

/// The fragmentation phase of Algorithm 1 (lines 11–18), given the merged
/// groups.
pub fn normalize_with_groups(
    ic: &TemporalInstance,
    groups: &[BTreeSet<FactRef>],
) -> Result<TemporalInstance> {
    // Per-fact breakpoints: TP_Δ of the group the fact belongs to.
    let mut fact_group: FxHashMap<FactRef, usize> = FxHashMap::default();
    let mut group_bps: Vec<Breakpoints> = Vec::with_capacity(groups.len());
    for (gi, group) in groups.iter().enumerate() {
        let ivs: Vec<Interval> = group
            .iter()
            .map(|&(rel, row)| ic.facts(rel)[row as usize].interval)
            .collect();
        group_bps.push(Breakpoints::from_intervals(ivs.iter()));
        for &f in group {
            fact_group.insert(f, gi);
        }
    }
    let mut out = TemporalInstance::new(ic.schema_arc());
    for r in 0..ic.schema().len() {
        let rel = RelId(r as u32);
        for (row, fact) in ic.facts(rel).iter().enumerate() {
            match fact_group.get(&(rel, row as u32)) {
                Some(&gi) => {
                    for iv in fragment_interval(&fact.interval, &group_bps[gi]) {
                        out.insert(rel, Arc::clone(&fact.data), iv);
                    }
                }
                None => {
                    out.insert(rel, Arc::clone(&fact.data), fact.interval);
                }
            }
        }
    }
    Ok(out)
}

/// Checks the **empty intersection property** (Definition 10): for every
/// homomorphism from some `φ∗ ∈ N(Φ⁺)` to the instance, the matched facts'
/// intervals are either pairwise identical or have an empty common
/// intersection. By Theorem 11 this is equivalent to the normalization
/// property.
pub fn has_empty_intersection_property(
    ic: &TemporalInstance,
    conjunctions: &[&[Atom]],
) -> Result<bool> {
    for atoms in conjunctions {
        let mut ok = true;
        ic.find_matches(atoms, TemporalMode::Free, &[], None, |m| {
            let mut distinct: BTreeSet<Interval> = BTreeSet::new();
            for i in 0..m.atom_rows().len() {
                if let Some(iv) = m.atom_interval(i) {
                    distinct.insert(iv);
                }
            }
            if distinct.len() <= 1 {
                return true; // all equal — condition 2 of Definition 10
            }
            // Otherwise the common intersection must be empty.
            let mut acc: Option<Interval> = None;
            let mut empty = false;
            for iv in &distinct {
                acc = match acc {
                    None => Some(*iv),
                    Some(a) => match a.intersect(iv) {
                        Some(x) => Some(x),
                        None => {
                            empty = true;
                            break;
                        }
                    },
                };
            }
            if empty {
                true
            } else {
                ok = false;
                false // stop early: property violated
            }
        })?;
        if !ok {
            return Ok(false);
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantics::semantics;
    use std::sync::Arc;
    use tdx_logic::{parse_tgd, RelationSchema, Schema};
    use tdx_temporal::Interval;

    fn iv(s: u64, e: u64) -> Interval {
        Interval::new(s, e)
    }

    fn body(src: &str) -> Vec<Atom> {
        parse_tgd(&format!("{src} -> Sink()")).unwrap().body
    }

    fn paper_schema() -> Arc<Schema> {
        Arc::new(
            Schema::new(vec![
                RelationSchema::new("E", &["name", "company"]),
                RelationSchema::new("S", &["name", "salary"]),
            ])
            .unwrap(),
        )
    }

    /// Figure 4.
    fn figure4() -> TemporalInstance {
        let mut i = TemporalInstance::new(paper_schema());
        i.insert_strs("E", &["Ada", "IBM"], iv(2012, 2014));
        i.insert_strs("E", &["Ada", "Google"], Interval::from(2014));
        i.insert_strs("E", &["Bob", "IBM"], iv(2013, 2018));
        i.insert_strs("S", &["Ada", "18k"], Interval::from(2013));
        i.insert_strs("S", &["Bob", "13k"], Interval::from(2015));
        i
    }

    #[test]
    fn figure5_normalization() {
        // norm(Figure 4, {E+(n,c,t) ∧ S+(n,s,t)}) = Figure 5 exactly.
        let ic = figure4();
        let phi = body("E(n,c) & S(n,s)");
        let out = normalize(&ic, &[&phi]).unwrap();
        let mut expected = TemporalInstance::new(paper_schema());
        expected.insert_strs("E", &["Ada", "IBM"], iv(2012, 2013));
        expected.insert_strs("E", &["Ada", "IBM"], iv(2013, 2014));
        expected.insert_strs("E", &["Ada", "Google"], Interval::from(2014));
        expected.insert_strs("E", &["Bob", "IBM"], iv(2013, 2015));
        expected.insert_strs("E", &["Bob", "IBM"], iv(2015, 2018));
        expected.insert_strs("S", &["Ada", "18k"], iv(2013, 2014));
        expected.insert_strs("S", &["Ada", "18k"], Interval::from(2014));
        expected.insert_strs("S", &["Bob", "13k"], iv(2015, 2018));
        expected.insert_strs("S", &["Bob", "13k"], Interval::from(2018));
        assert_eq!(out, expected);
        assert_eq!(out.total_len(), 9);
    }

    #[test]
    fn figure6_naive_normalization() {
        // Naïve normalization of Figure 4 = Figure 6: 14 facts.
        let out = naive_normalize(&figure4());
        let mut expected = TemporalInstance::new(paper_schema());
        expected.insert_strs("E", &["Ada", "IBM"], iv(2012, 2013));
        expected.insert_strs("E", &["Ada", "IBM"], iv(2013, 2014));
        expected.insert_strs("E", &["Ada", "Google"], iv(2014, 2015));
        expected.insert_strs("E", &["Ada", "Google"], iv(2015, 2018));
        expected.insert_strs("E", &["Ada", "Google"], Interval::from(2018));
        expected.insert_strs("E", &["Bob", "IBM"], iv(2013, 2014));
        expected.insert_strs("E", &["Bob", "IBM"], iv(2014, 2015));
        expected.insert_strs("E", &["Bob", "IBM"], iv(2015, 2018));
        expected.insert_strs("S", &["Ada", "18k"], iv(2013, 2014));
        expected.insert_strs("S", &["Ada", "18k"], iv(2014, 2015));
        expected.insert_strs("S", &["Ada", "18k"], iv(2015, 2018));
        expected.insert_strs("S", &["Ada", "18k"], Interval::from(2018));
        expected.insert_strs("S", &["Bob", "13k"], iv(2015, 2018));
        expected.insert_strs("S", &["Bob", "13k"], Interval::from(2018));
        assert_eq!(out, expected);
        assert_eq!(out.total_len(), 14);
    }

    fn example14_schema() -> Arc<Schema> {
        Arc::new(
            Schema::new(vec![
                RelationSchema::new("R", &["a"]),
                RelationSchema::new("P", &["a"]),
                RelationSchema::new("S", &["a"]),
            ])
            .unwrap(),
        )
    }

    /// Figure 7: f1..f5.
    fn figure7() -> TemporalInstance {
        let mut i = TemporalInstance::new(example14_schema());
        i.insert_strs("R", &["a"], iv(5, 11)); // f1
        i.insert_strs("P", &["a"], iv(8, 15)); // f2
        i.insert_strs("P", &["b"], iv(20, 25)); // f4
        i.insert_strs("S", &["a"], iv(7, 10)); // f3
        i.insert_strs("S", &["b"], Interval::from(18)); // f5
        i
    }

    #[test]
    fn example14_groups() {
        // φ1: R+(x,t1) ∧ P+(y,t2), φ2: P+(x,t1) ∧ S+(y,t2).
        let ic = figure7();
        let phi1 = body("R(x) & P(y)");
        let phi2 = body("P(x) & S(y)");
        let groups = candidate_groups(&ic, &[&phi1, &phi2]).unwrap();
        // After merging: {f1,f2,f3} and {f4,f5}.
        assert_eq!(groups.len(), 2);
        let sizes: Vec<usize> = groups.iter().map(|g| g.len()).collect();
        assert_eq!(sizes, vec![3, 2]);
    }

    #[test]
    fn example14_output_is_figure8() {
        let ic = figure7();
        let phi1 = body("R(x) & P(y)");
        let phi2 = body("P(x) & S(y)");
        let out = normalize(&ic, &[&phi1, &phi2]).unwrap();
        let mut expected = TemporalInstance::new(example14_schema());
        // f1 → [5,7),[7,8),[8,10),[10,11)
        expected.insert_strs("R", &["a"], iv(5, 7));
        expected.insert_strs("R", &["a"], iv(7, 8));
        expected.insert_strs("R", &["a"], iv(8, 10));
        expected.insert_strs("R", &["a"], iv(10, 11));
        // f2 → [8,10),[10,11),[11,15)
        expected.insert_strs("P", &["a"], iv(8, 10));
        expected.insert_strs("P", &["a"], iv(10, 11));
        expected.insert_strs("P", &["a"], iv(11, 15));
        // f4 → [20,25)
        expected.insert_strs("P", &["b"], iv(20, 25));
        // f3 → [7,8),[8,10)   (paper's f31/f32 — Figure 8 has a typo
        // listing f31 twice)
        expected.insert_strs("S", &["a"], iv(7, 8));
        expected.insert_strs("S", &["a"], iv(8, 10));
        // f5 → [18,20),[20,25),[25,∞)
        expected.insert_strs("S", &["b"], iv(18, 20));
        expected.insert_strs("S", &["b"], iv(20, 25));
        expected.insert_strs("S", &["b"], Interval::from(25));
        assert_eq!(out, expected);
    }

    #[test]
    fn normalized_output_has_empty_intersection_property() {
        let ic = figure4();
        let phi = body("E(n,c) & S(n,s)");
        assert!(!has_empty_intersection_property(&ic, &[&phi]).unwrap());
        let out = normalize(&ic, &[&phi]).unwrap();
        assert!(has_empty_intersection_property(&out, &[&phi]).unwrap());
        // Naïve normalization also satisfies it.
        let naive = naive_normalize(&ic);
        assert!(has_empty_intersection_property(&naive, &[&phi]).unwrap());
    }

    #[test]
    fn normalization_preserves_semantics() {
        let ic = figure4();
        let phi = body("E(n,c) & S(n,s)");
        let out = normalize(&ic, &[&phi]).unwrap();
        assert!(semantics(&ic).eq_semantic(&semantics(&out)));
        let naive = naive_normalize(&ic);
        assert!(semantics(&ic).eq_semantic(&semantics(&naive)));
    }

    #[test]
    fn normalize_with_no_conjunctions_is_identity() {
        let ic = figure4();
        let out = normalize(&ic, &[]).unwrap();
        assert_eq!(out, ic);
    }

    #[test]
    fn already_normalized_is_fixpoint() {
        let ic = figure4();
        let phi = body("E(n,c) & S(n,s)");
        let once = normalize(&ic, &[&phi]).unwrap();
        let twice = normalize(&once, &[&phi]).unwrap();
        assert_eq!(once, twice);
    }

    #[test]
    fn single_atom_conjunction_never_fragments() {
        // A single-atom body always maps t to one fact's interval; every
        // instance is already normalized for it.
        let ic = figure4();
        let phi = body("E(n,c)");
        assert!(has_empty_intersection_property(&ic, &[&phi]).unwrap());
        let out = normalize(&ic, &[&phi]).unwrap();
        assert_eq!(out, ic);
    }
}
