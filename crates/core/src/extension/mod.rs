//! Extensions beyond the paper's core results, implementing parts of its
//! Section 7 future-work agenda.
//!
//! * [`cores`] — cores of (universal) solutions: the paper points at
//!   revisiting "the classical data exchange problems … such as the notion
//!   of core"; we compute snapshot cores and their pointwise lifting to
//!   concrete instances;
//! * [`temporal_chase`] — a chase for **temporal (modal) s-t tgds**
//!   (`◇⁻`, `□⁻`, `◇⁺`, `□⁺` heads), the extension the paper sketches with
//!   its PhD-candidate example. The paper explicitly leaves the right
//!   notion of universal solution open; this module materializes *a*
//!   solution with a deterministic witness-placement policy and verifies it
//!   against the two-sorted FOL semantics.

pub mod cores;
pub mod temporal_chase;

pub use cores::{concrete_core, snapshot_core};
pub use temporal_chase::{satisfies_temporal_tgd, temporal_chase, TemporalSetting};
