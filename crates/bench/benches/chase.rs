//! Benchmarks for Section 4.3: the c-chase end to end, plus the two design
//! ablations called out in `DESIGN.md` (egd-round re-normalization and
//! naïve source normalization).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use tdx_core::{c_chase_with, ChaseOptions};
use tdx_workload::{
    clustered_instance, nested_mapping, ClusteredConfig, EmploymentConfig, EmploymentWorkload,
};

fn bench_employment(c: &mut Criterion) {
    let mut group = c.benchmark_group("c_chase/employment");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for persons in [10usize, 25, 50] {
        let w = EmploymentWorkload::generate(&EmploymentConfig {
            persons,
            horizon: 30,
            seed: 42,
            ..EmploymentConfig::default()
        });
        group.bench_with_input(BenchmarkId::new("default", persons), &persons, |b, _| {
            b.iter(|| c_chase_with(&w.source, &w.mapping, &ChaseOptions::default()).unwrap())
        });
        group.bench_with_input(
            BenchmarkId::new("paper_faithful", persons),
            &persons,
            |b, _| {
                b.iter(|| {
                    c_chase_with(&w.source, &w.mapping, &ChaseOptions::paper_faithful()).unwrap()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("naive_normalization", persons),
            &persons,
            |b, _| {
                b.iter(|| {
                    c_chase_with(
                        &w.source,
                        &w.mapping,
                        &ChaseOptions {
                            naive_normalization: true,
                            ..ChaseOptions::default()
                        },
                    )
                    .unwrap()
                })
            },
        );
    }
    group.finish();
}

fn bench_nested(c: &mut Criterion) {
    let mut group = c.benchmark_group("c_chase/nested");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for n in [8usize, 16, 24] {
        let (mapping, src) = nested_mapping(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| c_chase_with(&src, &mapping, &ChaseOptions::default()).unwrap())
        });
    }
    group.finish();
}

/// The headline ablation for the FactStore refactor: the indexed semi-naive
/// engine against the legacy full-scan engine, across all three workload
/// families. The acceptance bar is ≥ 1.5× on the largest scenario.
fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("c_chase/engine");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    let engines = [
        ("indexed_semi_naive", ChaseOptions::default()),
        ("legacy_scan", ChaseOptions::legacy_scan()),
    ];
    for persons in [50usize, 100] {
        let w = EmploymentWorkload::generate(&EmploymentConfig {
            persons,
            horizon: 30,
            seed: 42,
            ..EmploymentConfig::default()
        });
        for (label, opts) in &engines {
            group.bench_with_input(
                BenchmarkId::new(format!("employment/{label}"), persons),
                &persons,
                |b, _| b.iter(|| c_chase_with(&w.source, &w.mapping, opts).unwrap()),
            );
        }
    }
    for n in [16usize, 24] {
        let (mapping, src) = nested_mapping(n);
        for (label, opts) in &engines {
            group.bench_with_input(
                BenchmarkId::new(format!("nested/{label}"), n),
                &n,
                |b, _| b.iter(|| c_chase_with(&src, &mapping, opts).unwrap()),
            );
        }
    }
    // Normalization-dominated: Algorithm 1 group discovery over clustered
    // intervals, which the interval-endpoint index accelerates.
    use tdx_core::normalize::normalize_with;
    use tdx_storage::SearchOptions;
    for clusters in [10usize, 20] {
        let (instance, conj) = clustered_instance(&ClusteredConfig {
            clusters,
            ..ClusteredConfig::default()
        });
        for (label, use_indexes) in [("indexed", true), ("full_scan", false)] {
            group.bench_with_input(
                BenchmarkId::new(format!("normalize_clustered/{label}"), clusters),
                &clusters,
                |b, _| {
                    b.iter(|| {
                        normalize_with(&instance, &[conj.as_slice()], SearchOptions { use_indexes })
                            .unwrap()
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_employment, bench_nested, bench_engines);
criterion_main!(benches);
