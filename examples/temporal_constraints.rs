//! Temporal (modal) schema mappings — the paper's Section 7 extension.
//!
//! The paper closes with: *"A natural extension … is to enrich the schema
//! mappings such that they can express temporal phenomena"*, giving the
//! constraint that every PhD graduate was, at some earlier time, a candidate
//! with an adviser and a topic. This example runs that exact constraint
//! through the temporal chase, shows the witness the chase invents, the case
//! where history already provides one, and the degenerate case the paper's
//! open question hints at — an obligation about the past at the beginning of
//! time.
//!
//! ```text
//! cargo run --example temporal_constraints
//! ```

use std::sync::Arc;
use tdx::core::extension::temporal_chase::{
    satisfies_temporal_tgd, temporal_chase, TemporalSetting,
};
use tdx::core::{AValue, AbstractInstanceBuilder};
use tdx::logic::{parse_schema, parse_temporal_tgd, parse_tgd, SchemaMapping};
use tdx::{Interval, TdxError};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base = SchemaMapping::new(
        parse_schema("PhDgrad(name). Works(name, dept).")?,
        parse_schema("PhDCan(name, adviser, topic). Staff(name, dept).")?,
        vec![parse_tgd("Works(n, d) -> Staff(n, d)")?],
        vec![],
    )?;
    let setting = TemporalSetting::new(
        base,
        vec![
            parse_temporal_tgd(
                "PhDgrad(n) -> sometime_past exists adv, top . PhDCan(n, adv, top)",
            )?
            .named("was_candidate"),
            parse_temporal_tgd("PhDgrad(n) -> always_future exists d . Staff(n, d)")?
                .named("stays_staff"),
        ],
    )
    .map_err(TdxError::Invalid)?;
    println!("temporal mapping:");
    for t in &setting.temporal_tgds {
        println!("  {t}");
    }

    // Ada graduates in year 5 and works from year 5 to 9.
    let src_schema = Arc::new(parse_schema("PhDgrad(name). Works(name, dept).")?);
    let mut b = AbstractInstanceBuilder::new(Arc::clone(&src_schema));
    b.add("PhDgrad", vec![AValue::str("Ada")], Interval::new(5, 6));
    b.add(
        "Works",
        vec![AValue::str("Ada"), AValue::str("DBLab")],
        Interval::new(5, 9),
    );
    let src = b.build();

    let tgt = temporal_chase(&src, &setting)?;
    println!("\nchased target (years 3–10):");
    print!("{}", tgt.render_window(3..=10));
    println!(
        "→ the chase invented a candidacy record at year 4 (fresh adviser/topic\n  \
         nulls) and keeps Ada on staff forever after graduation."
    );
    for t in &setting.temporal_tgds {
        assert!(satisfies_temporal_tgd(&src, &tgt, t)?);
    }
    println!("→ both modal dependencies verified against the 2-FOL semantics ✓");

    // If history already contains the candidacy, nothing is invented.
    let mut b = AbstractInstanceBuilder::new(Arc::clone(&src_schema));
    b.add("PhDgrad", vec![AValue::str("Bob")], Interval::new(7, 8));
    b.add(
        "Works",
        vec![AValue::str("Bob"), AValue::str("Registry")],
        Interval::new(2, 4),
    );
    let src2 = b.build();
    // Bob worked in years 2–3 — but that feeds Staff, not PhDCan, so a
    // candidacy witness is still needed; it lands at year 6.
    let tgt2 = temporal_chase(&src2, &setting)?;
    let (pp, _) = tgt2.snapshot_at(6).null_bases();
    println!(
        "\nBob graduates in year 7 with no recorded candidacy: the chase places\n\
         one at year 6 with {} fresh unknowns.",
        pp.len()
    );

    // The paper's open edge: graduating at the beginning of time.
    let mut b = AbstractInstanceBuilder::new(src_schema);
    b.add("PhDgrad", vec![AValue::str("Eve")], Interval::new(0, 1));
    let src3 = b.build();
    match temporal_chase(&src3, &setting) {
        Err(TdxError::TemporalUnsatisfiable { dependency, detail }) => {
            println!("\nEve graduates at time 0 → `{dependency}` is unsatisfiable: {detail}");
            println!("(no solution exists — time has no point before 0)");
        }
        other => {
            other?;
            unreachable!("time 0 has no past");
        }
    }
    Ok(())
}
