//! Constants of the data domain.

use crate::symbol::Symbol;
use std::fmt;

/// A constant value from the data domain `Const`.
///
/// The paper's domain is uninterpreted; we support interned strings (names
/// like `Ada`, `IBM`, `18k`) and 64-bit integers (convenient for generated
/// workloads). Constants of different kinds are never equal.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Constant {
    /// An integer constant.
    Int(i64),
    /// An interned string constant.
    Str(Symbol),
}

impl Constant {
    /// Builds a string constant.
    pub fn str(s: &str) -> Constant {
        Constant::Str(Symbol::intern(s))
    }

    /// Builds an integer constant.
    pub fn int(i: i64) -> Constant {
        Constant::Int(i)
    }

    /// Lexicographic/numeric order for human-readable output (integers
    /// before strings, strings by text).
    pub fn cmp_display(&self, other: &Constant) -> std::cmp::Ordering {
        match (self, other) {
            (Constant::Int(a), Constant::Int(b)) => a.cmp(b),
            (Constant::Int(_), Constant::Str(_)) => std::cmp::Ordering::Less,
            (Constant::Str(_), Constant::Int(_)) => std::cmp::Ordering::Greater,
            (Constant::Str(a), Constant::Str(b)) => a.cmp_lexical(b),
        }
    }
}

impl From<i64> for Constant {
    fn from(i: i64) -> Self {
        Constant::Int(i)
    }
}

impl From<&str> for Constant {
    fn from(s: &str) -> Self {
        Constant::str(s)
    }
}

impl fmt::Display for Constant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Constant::Int(i) => write!(f, "{i}"),
            Constant::Str(s) => write!(f, "{s}"),
        }
    }
}

impl fmt::Debug for Constant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_distinct() {
        assert_ne!(Constant::int(18), Constant::str("18"));
        assert_eq!(Constant::str("IBM"), Constant::str("IBM"));
        assert_eq!(Constant::int(5), Constant::from(5i64));
        assert_eq!(Constant::str("x"), Constant::from("x"));
    }

    #[test]
    fn display_order_is_stable_and_readable() {
        let mut v = vec![
            Constant::str("bbb-const"),
            Constant::int(10),
            Constant::str("aaa-const"),
            Constant::int(2),
        ];
        v.sort_by(|a, b| a.cmp_display(b));
        assert_eq!(
            v,
            vec![
                Constant::int(2),
                Constant::int(10),
                Constant::str("aaa-const"),
                Constant::str("bbb-const"),
            ]
        );
    }

    #[test]
    fn display() {
        assert_eq!(Constant::int(-3).to_string(), "-3");
        assert_eq!(Constant::str("Ada").to_string(), "Ada");
    }
}
