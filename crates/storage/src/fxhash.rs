//! A minimal Fx-style hasher for the storage layer's hot maps.
//!
//! The store's indexes hash tiny keys — interned symbol ids, null ids,
//! `(Row, Interval)` tuples of a few machine words — millions of times per
//! chase. SipHash's per-instance initialization and per-round cost dominate
//! those operations; the multiply-xor folding below (the rustc `FxHasher`
//! scheme) is 3-10× cheaper on such keys. The maps are process-internal and
//! never exposed to untrusted keys, so HashDoS resistance is not a concern
//! here.

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` with the Fx hasher.
// tdx-lint: allow(hash-order): this alias pins the fixed-seed hasher the rule steers everyone toward
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` with the Fx hasher.
// tdx-lint: allow(hash-order): same fixed-seed hasher as the map alias above
pub type FxHashSet<T> = std::collections::HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc/firefox multiply-xor hasher: fold each word into the state
/// with a rotate, xor, and odd-constant multiply.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut rest = bytes;
        while let Some((chunk, tail)) = rest.split_first_chunk::<8>() {
            self.add(u64::from_le_bytes(*chunk));
            rest = tail;
        }
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }
    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(v as u64);
    }
    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }
    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }
    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_and_sets_work() {
        let mut m: FxHashMap<(u32, u64), Vec<u32>> = FxHashMap::default();
        for i in 0..1000u32 {
            m.entry((i % 7, (i as u64) % 13)).or_default().push(i);
        }
        assert_eq!(m.len(), 7 * 13);
        let mut s: FxHashSet<String> = FxHashSet::default();
        assert!(s.insert("a".into()));
        assert!(!s.insert("a".into()));
    }

    #[test]
    fn distributes_small_integers() {
        // Sanity: consecutive ids should not collapse to few buckets.
        let hashes: std::collections::HashSet<u64> = (0..1024u64)
            .map(|v| {
                let mut h = FxHasher::default();
                h.write_u64(v);
                h.finish()
            })
            .collect();
        assert_eq!(hashes.len(), 1024);
    }
}
