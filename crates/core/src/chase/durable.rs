//! Durable incremental exchange sessions: a write-ahead log of committed
//! batches, periodic compacted snapshots, and crash recovery that restarts
//! byte-identical to the session that never crashed.
//!
//! [`DurableExchange`] wraps an [`IncrementalExchange`] and pins its state
//! to a **state directory**:
//!
//! * `wal.log` — a [`tdx_storage::wal::Wal`] of committed
//!   [`DeltaBatch`]es, one CRC-guarded, fsync'd record per successful
//!   [`apply`](DurableExchange::apply). A record is written only *after*
//!   the batch commits in memory, so the log is exactly the acknowledged
//!   history: a crash mid-append leaves a torn tail that replay drops —
//!   the corresponding `apply` never returned `Ok`, so nothing
//!   acknowledged is lost.
//! * `snapshot.bin` — a compacted snapshot of the session's full chase
//!   state (accumulated source, timeline partition, normalized source,
//!   materialized target, memo tables, null counter, session counters) in
//!   the canonical encoding of `IncrementalExchange::encode_state`,
//!   written atomically every [`snapshot_every`](DurableExchange::snapshot_every)
//!   batches (or on [`snapshot_now`](DurableExchange::snapshot_now)),
//!   after which the WAL is truncated. The snapshot payload carries the
//!   sequence number it covers, so replay skips WAL records the snapshot
//!   already contains — a crash between snapshot write and WAL truncation
//!   only makes replay skip, never double-apply.
//! * `server-{s}.addr` — with the TCP transport, where each listen-mode
//!   partition server can be re-reached (see
//!   [`DurableTcpSpawner`]): recovery re-attaches to surviving servers
//!   and adopts their retained images when the `Resume` watermark digests
//!   match, instead of respawning and re-shipping.
//!
//! # Why recovery is byte-identical
//!
//! [`IncrementalExchange::apply`] is deterministic: given equal session
//! state and an equal batch, it performs identical work (hash sets are
//! only membership-probed; every order-sensitive enumeration sorts
//! first). The snapshot restores equal state by construction, and the WAL
//! replays the acknowledged batches in commit order — so the recovered
//! session's canonical state encoding equals the uncrashed session's,
//! byte for byte (`tests/durability.rs` asserts exactly this at every
//! crash point). See `docs/durability.md`.

use crate::chase::cluster::{DurableTcpSpawner, TransportKind};
use crate::chase::concrete::ChaseOptions;
use crate::chase::incremental::{BatchStats, DeltaBatch, IncrementalExchange};
use crate::error::{Result, TdxError};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use tdx_logic::SchemaMapping;
use tdx_storage::codec::{decode, encode};
use tdx_storage::wal::{read_snapshot, replay, write_snapshot, Wal};

/// Default snapshot cadence: compact after this many WAL'd batches.
const DEFAULT_SNAPSHOT_EVERY: usize = 8;

fn durable_err(what: &str, e: impl std::fmt::Display) -> TdxError {
    TdxError::Invalid(format!("durable session: {what}: {e}"))
}

/// A crash-safe [`IncrementalExchange`]: every committed batch is
/// write-ahead logged, state is periodically compacted into an atomic
/// snapshot, and [`open`](DurableExchange::open) recovers by loading the
/// snapshot and replaying the log — reconnecting to surviving partition
/// servers on the TCP transport. See the module docs.
pub struct DurableExchange {
    inner: IncrementalExchange,
    state_dir: PathBuf,
    wal: Wal,
    snapshot_every: usize,
    /// Sequence number of the last committed batch.
    seq: u64,
    /// Highest sequence number the on-disk snapshot covers.
    snapshot_seq: u64,
    /// WAL records since that snapshot.
    since_snapshot: usize,
    /// Batches replayed from the WAL by this `open`.
    replayed: usize,
    /// Partition servers adopted (not respawned) by this `open`.
    resumed_servers: usize,
}

impl DurableExchange {
    /// Opens (or recovers) a durable session in `state_dir`, which is
    /// created if absent. An empty directory starts a fresh session; a
    /// directory with prior state restores its snapshot, replays the WAL
    /// past it, and — on the TCP transport — re-attaches to surviving
    /// partition servers. The mapping must be the one the state was
    /// recorded under (checked by fingerprint).
    pub fn open(
        mapping: SchemaMapping,
        opts: ChaseOptions,
        state_dir: impl Into<PathBuf>,
    ) -> Result<DurableExchange> {
        let state_dir = state_dir.into();
        std::fs::create_dir_all(&state_dir).map_err(|e| durable_err("state dir", e))?;
        let mut inner = IncrementalExchange::with_options(mapping, opts)?;

        // Snapshot first: it compacts a WAL prefix.
        let mut seq = 0u64;
        let mut snapshot_seq = 0u64;
        let snap_path = state_dir.join("snapshot.bin");
        if let Some(payload) = read_snapshot(&snap_path).map_err(|e| durable_err("snapshot", e))? {
            let Some((head, state)) = payload.split_first_chunk::<8>() else {
                return Err(durable_err("snapshot", "payload shorter than its header"));
            };
            snapshot_seq = u64::from_le_bytes(*head);
            inner.restore_state(state)?;
            seq = snapshot_seq;
        }

        // Then the log: apply every committed batch past the snapshot.
        let wal_path = state_dir.join("wal.log");
        let log = replay(&wal_path).map_err(|e| durable_err("WAL replay", e))?;
        let mut replayed = 0usize;
        for record in &log.records {
            let (rec_seq, batch) =
                decode::<(u64, DeltaBatch)>(record).map_err(|e| durable_err("WAL record", e))?;
            if rec_seq <= snapshot_seq {
                // Compacted into the snapshot; the crash hit between
                // snapshot write and WAL truncation.
                continue;
            }
            if rec_seq != seq + 1 {
                return Err(durable_err(
                    "WAL replay",
                    format!("sequence gap: expected {}, found {rec_seq}", seq + 1),
                ));
            }
            inner.apply(&batch)?;
            seq = rec_seq;
            replayed += 1;
        }
        let mut wal = Wal::open(&wal_path).map_err(|e| durable_err("WAL open", e))?;
        if log.torn {
            // Cut the torn tail so appends extend the valid prefix.
            wal.truncate_to(log.valid_len)
                .map_err(|e| durable_err("WAL truncate", e))?;
        }

        // Coordinator reconnect: with listen-mode TCP servers, adopt
        // survivors whose Resume watermarks match the recovered state.
        let mut resumed_servers = 0;
        if inner.server_count() > 0 && inner.transport_kind() == TransportKind::Tcp {
            resumed_servers = inner.resume_cluster(Arc::new(DurableTcpSpawner::new(&state_dir)))?;
        }

        Ok(DurableExchange {
            inner,
            state_dir,
            wal,
            snapshot_every: DEFAULT_SNAPSHOT_EVERY,
            seq,
            snapshot_seq,
            since_snapshot: (seq - snapshot_seq) as usize,
            replayed,
            resumed_servers,
        })
    }

    /// Overrides the snapshot cadence: compact after every `k` batches
    /// (`k` is clamped to at least 1).
    pub fn snapshot_every(mut self, k: usize) -> DurableExchange {
        self.snapshot_every = k.max(1);
        self
    }

    /// Applies one batch durably: the in-memory commit first, then one
    /// fsync'd WAL append. `Ok` means the batch survives any crash from
    /// here on; a failed (rolled-back) batch is not logged, so replay sees
    /// exactly the acknowledged history.
    pub fn apply(&mut self, batch: &DeltaBatch) -> Result<BatchStats> {
        let stats = self.inner.apply(batch)?;
        self.seq += 1;
        self.wal
            .append(&encode(&(self.seq, batch.clone())))
            .map_err(|e| durable_err("WAL append", e))?;
        self.since_snapshot += 1;
        if self.since_snapshot >= self.snapshot_every {
            self.snapshot_now()?;
        }
        Ok(stats)
    }

    /// Compacts now: writes the canonical state snapshot atomically
    /// (temp file + rename), then truncates the WAL it subsumes.
    pub fn snapshot_now(&mut self) -> Result<()> {
        let mut payload = self.seq.to_le_bytes().to_vec();
        payload.extend_from_slice(&self.inner.encode_state());
        write_snapshot(&self.state_dir.join("snapshot.bin"), &payload)
            .map_err(|e| durable_err("snapshot write", e))?;
        self.snapshot_seq = self.seq;
        self.wal
            .truncate()
            .map_err(|e| durable_err("WAL truncate", e))?;
        self.since_snapshot = 0;
        Ok(())
    }

    /// The wrapped incremental session (target, stats, traffic counters).
    pub fn session(&self) -> &IncrementalExchange {
        &self.inner
    }

    /// The materialized solution (see [`IncrementalExchange::target`]).
    pub fn target(&self) -> tdx_storage::TemporalInstance {
        self.inner.target()
    }

    /// The session's canonical state encoding — what snapshots store and
    /// what the crash-recovery property tests compare byte-for-byte.
    pub fn state_bytes(&self) -> Vec<u8> {
        self.inner.encode_state()
    }

    /// The state directory this session persists into.
    pub fn state_dir(&self) -> &Path {
        &self.state_dir
    }

    /// Sequence number of the last committed batch.
    pub fn committed(&self) -> u64 {
        self.seq
    }

    /// Batches replayed from the WAL when this session was opened.
    pub fn replayed(&self) -> usize {
        self.replayed
    }

    /// Partition servers adopted (rather than respawned) when this
    /// session was opened — always 0 on the channel transport.
    pub fn resumed_servers(&self) -> usize {
        self.resumed_servers
    }

    /// Abandons the session the way `kill -9` would: partition-server
    /// carriers are severed with no protocol shutdown (listen-mode
    /// servers keep their state for the next `open`'s `Resume`
    /// handshake), and nothing further is written to the state
    /// directory. Test support for crash recovery.
    pub fn simulate_crash(mut self) {
        self.inner.sever_cluster();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chase::incremental::tests::{batch, other_mapping, paper_mapping};
    use tdx_temporal::Interval;

    fn temp_dir(tag: &str) -> PathBuf {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static N: AtomicUsize = AtomicUsize::new(0);
        let d = std::env::temp_dir().join(format!(
            "tdx-durable-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn iv(s: u64, e: u64) -> Interval {
        Interval::new(s, e)
    }

    #[test]
    fn fresh_open_apply_reopen_recovers_identically() {
        let dir = temp_dir("roundtrip");
        let mapping = paper_mapping();
        let mut s = DurableExchange::open(mapping.clone(), ChaseOptions::default(), &dir)
            .unwrap()
            .snapshot_every(2);
        s.apply(&batch(&mapping, &[("E", &["Ada", "IBM"][..], iv(0, 10))]))
            .unwrap();
        s.apply(&batch(&mapping, &[("S", &["Ada", "18k"][..], iv(2, 8))]))
            .unwrap();
        s.apply(&batch(&mapping, &[("E", &["Bob", "SAP"][..], iv(5, 15))]))
            .unwrap();
        let reference = s.state_bytes();
        let target = s.target();
        assert_eq!(s.committed(), 3);
        s.simulate_crash();

        let recovered =
            DurableExchange::open(mapping.clone(), ChaseOptions::default(), &dir).unwrap();
        // Snapshot at batch 2 + one WAL record replayed past it.
        assert_eq!(recovered.replayed(), 1);
        assert_eq!(recovered.committed(), 3);
        assert_eq!(recovered.state_bytes(), reference);
        assert_eq!(recovered.target(), target);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_continues_the_null_counter_and_stats() {
        let dir = temp_dir("counters");
        let mapping = paper_mapping();
        let mut s = DurableExchange::open(mapping.clone(), ChaseOptions::default(), &dir).unwrap();
        s.apply(&batch(&mapping, &[("E", &["Ada", "IBM"][..], iv(0, 10))]))
            .unwrap();
        let stats_before = s.session().stats();
        s.simulate_crash();

        let mut recovered =
            DurableExchange::open(mapping.clone(), ChaseOptions::default(), &dir).unwrap();
        assert_eq!(recovered.session().stats(), stats_before);
        // Further batches continue seamlessly on the recovered state.
        recovered
            .apply(&batch(&mapping, &[("E", &["Bob", "SAP"][..], iv(3, 7))]))
            .unwrap();
        assert_eq!(recovered.committed(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mismatched_mapping_is_rejected() {
        let dir = temp_dir("mismatch");
        let mapping = paper_mapping();
        let mut s = DurableExchange::open(mapping.clone(), ChaseOptions::default(), &dir).unwrap();
        s.apply(&batch(&mapping, &[("E", &["Ada", "IBM"][..], iv(0, 10))]))
            .unwrap();
        s.snapshot_now().unwrap();
        drop(s);

        let err = match DurableExchange::open(other_mapping(), ChaseOptions::default(), &dir) {
            Err(e) => e,
            Ok(_) => panic!("open under a different mapping must fail"),
        };
        assert!(
            format!("{err}").contains("different schema mapping"),
            "{err}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
