//! The coordinator: the one place global chase state lives, for every
//! engine that farms match enumeration out.
//!
//! Two things live here:
//!
//! 1. **The coordinator kernel** — the restricted-chase check machinery
//!    ([`Check`], [`classify_check`], [`TgdFolder`]) and the union-find
//!    merge fold ([`fold_merge_ops`]). [`ChaseEngine::PartitionedParallel`],
//!    [`ChaseEngine::Distributed`] and the
//!    [`IncrementalExchange`](crate::chase::incremental::IncrementalExchange)
//!    session all fold their enumerated matches through these same
//!    routines; only *where the enumeration ran* differs.
//! 2. **[`DistributedCluster`]** — the coordinator-side handle to a set of
//!    partition servers behind any [`Transport`] backend: delta-only
//!    `ApplyDelta` shipping against per-server retained-prefix watermarks,
//!    a heartbeat, and a bounded retry path that respawns a dead server
//!    and replays its watermarked images. [`c_chase_distributed`] is the
//!    batch engine loop on top of it.
//!
//! # Delta-only shipping
//!
//! For each server and store the cluster caches the routed image it last
//! shipped (the concatenated pre + delta lists, per relation). The
//! invariant is **cache = the server's retained image**: an `ApplyDelta`
//! ships, per relation, a [`SyncOp`] program — runs of retained facts
//! kept in order, plus inserts of only the genuinely new facts — and the
//! server reconstructs exactly the full lists the PR 4 protocol used to
//! re-ship wholesale. The program is the greedy in-order diff
//! ([`diff_ops`]), which is *exact* for how the chase evolves its lists:
//! settling appends (one retained run + a suffix — the retained-prefix
//! watermark of the steady state), union-find rewrites and
//! re-fragmentation delete in place and append replacements (retained
//! runs around the deletions). Traffic is therefore proportional to what
//! changed; only re-coarsening or a rebuild (a fresh cluster) re-ships
//! everything.
//!
//! # Failure handling
//!
//! Any transport error (or undecodable response) marks the server dead —
//! including a **deadline miss**: every coordinator-side `send`/`recv`
//! runs under the per-frame deadline of
//! [`frame_deadline`](crate::chase::frame_deadline), so a hung fail-slow
//! server surfaces as a `TimedOut` transport fault exactly like a crashed
//! one. The retry path backs off exponentially (with deterministic
//! jitter), respawns the server through the cluster's
//! [`TransportSpawner`], replays the `Hello` handshake and both stores'
//! cached images as full re-ships — restoring the server to exactly its
//! pre-failure state — and re-sends the failed frame. Each slot tracks a
//! [`ServerHealth`] state machine: a failure demotes it to `Suspect`, and
//! [`CLEAN_ROUNDS_TO_FORGIVE`] consecutive clean rounds decay one respawn
//! off its budget again (so a long-lived session is not killed by
//! transient faults accumulated over hours). A server that exhausts
//! [`MAX_RESPAWNS`] *without* recovering is **quarantined**: its slot is
//! permanently replaced by an in-coordinator [`LocalTransport`] running
//! the identical deterministic [`ServerState`] kernel, so the chase
//! completes byte-identical — slower, but never failed — instead of
//! erroring out. [`DistributedCluster::heartbeat`] pings every server and
//! runs the same recovery, for callers that held a cluster idle (an
//! incremental session between batches). See `docs/robustness.md`.
//!
//! # Determinism
//!
//! Responses are tagged with their partition index and folded in ascending
//! partition order; a partition's enumeration depends on neither the
//! server hosting it nor the transport carrying the frames. The result is
//! byte-identical across `{channel, tcp} × any server count`
//! (`tests/equivalence.rs`).

use super::protocol::{
    config_digest, image_digest, FactLists, Hom, ImagePair, MergeOp, Message, RelationSync,
    Response, ServerConfig, StoreKind, SyncOp,
};
use super::server::ServerState;
use super::transport::{
    resolve_transport, spawner_for, Transport, TransportKind, TransportSpawner,
};
use crate::chase::concrete::{
    instantiate, AnnotatedUnionFind, CChaseResult, ChaseOptions, ChaseStats, UfKey,
};
use crate::chase::partitioned::{
    apply_cuts, base_align_cuts, image_cuts, pack_ref, refragment_lists, rewrite_values,
    sweep_specs, unpack_ref, CutMap,
};
use crate::error::{Result, TdxError};
use crate::normalize::FactRef;
use std::sync::Arc;
use std::time::Duration;
use tdx_logic::{Atom, RelId, Schema, SchemaMapping, Term, Var};
use tdx_storage::codec::{decode, encode};
use tdx_storage::fxhash::FxHashSet;
use tdx_storage::{
    NullGen, Row, SearchOptions, TemporalFact, TemporalInstance, TemporalMode, Value,
};
use tdx_temporal::{Interval, TimelinePartition};

// ---------------------------------------------------------------------------
// The coordinator kernel

/// A memo entry: determined head values + the shared interval.
pub(crate) type MemoKey = (Vec<Value>, Interval);

/// The restricted-chase check for one tgd, cheapest applicable tier first:
/// without existentials, "no extension into the target" is just "some head
/// fact is missing" — the insert's own dedup answers it (`Direct`). A
/// single-atom head with non-repeated existentials reduces to a hash memo
/// over the determined head positions, updated on every insert (`Memo`).
/// Anything else falls back to the matcher probe (`Probe`).
#[derive(Clone)]
pub(crate) enum Check {
    /// Insert-dedup answers the check.
    Direct,
    /// Hash memo over the determined columns of the single head atom.
    Memo {
        /// Head relation the memo watches.
        rel: RelId,
        /// Determined column positions (constants + universal variables).
        cols: Vec<usize>,
    },
    /// Full matcher probe against the target.
    Probe,
}

/// Classifies the restricted-chase check tier for a tgd head (see
/// [`Check`]). Shared by the partitioned and distributed batch engines and
/// the incremental session — one classification, three call sites.
pub(crate) fn classify_check(head: &[Atom], existentials: &[Var], tgt: &Schema) -> Result<Check> {
    if existentials.is_empty() {
        return Ok(Check::Direct);
    }
    if head.len() == 1 {
        let atom = &head[0];
        let repeated = existentials.iter().any(|e| {
            atom.terms
                .iter()
                .filter(|t| matches!(t, Term::Var(v) if v == e))
                .count()
                > 1
        });
        if !repeated {
            return Ok(Check::Memo {
                rel: tgt.rel_id(atom.relation).ok_or_else(|| {
                    TdxError::Invalid(format!("unknown head relation {}", atom.relation))
                })?,
                cols: atom
                    .terms
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| match t {
                        Term::Const(_) => true,
                        Term::Var(v) => !existentials.contains(v),
                    })
                    .map(|(i, _)| i)
                    .collect(),
            });
        }
    }
    Ok(Check::Probe)
}

/// Registers an inserted target fact with every memo watching its relation.
pub(crate) fn register_memo<'a>(
    memos: &mut [FxHashSet<MemoKey>],
    checks: impl Iterator<Item = &'a Check>,
    rel: RelId,
    data: &[Value],
    iv: Interval,
) {
    for (mi, check) in checks.enumerate() {
        if let Check::Memo { rel: mrel, cols } = check {
            if *mrel == rel {
                let key: Vec<Value> = cols.iter().map(|&c| data[c]).collect();
                memos[mi].insert((key, iv));
            }
        }
    }
}

/// The memo probe key of one enumerated homomorphism: the determined head
/// values at `cols`, in column order. Homomorphisms arrive off the wire
/// from partition servers, so a missing binding is a malformed response —
/// a typed error through the transport-fault lane, never a panic.
pub(crate) fn memo_probe_key(
    cols: &[usize],
    atom: &Atom,
    h: &[(Var, Value)],
) -> Result<Vec<Value>> {
    cols.iter()
        .map(|&c| match &atom.terms[c] {
            Term::Const(cst) => Ok(Value::Const(*cst)),
            Term::Var(v) => h
                .iter()
                .find(|(w, _)| w == v)
                .map(|(_, val)| *val)
                .ok_or_else(|| {
                    TdxError::Invalid(format!(
                        "enumerated homomorphism leaves universal head variable {v:?} unbound"
                    ))
                }),
        })
        .collect()
}

/// Resolves a validated tgd head atom's target relation. Mapping
/// validation guarantees the lookup succeeds; if it ever does not (a
/// coordinator bug or a mapping mutated mid-chase), the chase fails with
/// a typed error rather than panicking mid-fold.
fn target_rel(mapping: &SchemaMapping, atom: &Atom) -> Result<RelId> {
    mapping.target().rel_id(atom.relation).ok_or_else(|| {
        TdxError::Invalid(format!(
            "tgd head relation {:?} is missing from the target schema",
            atom.relation
        ))
    })
}

/// Folds enumerated egd merge operations into a round's union-find. A
/// constant/constant clash fails the chase with the owning egd's name —
/// identical failure rendering for every engine. Returns the number of
/// effective identifications.
pub(crate) fn fold_merge_ops(
    ops: impl IntoIterator<Item = (usize, Value, Value, Interval)>,
    uf: &mut AnnotatedUnionFind,
    egd_name: impl Fn(usize) -> String,
) -> Result<usize> {
    let mut merges = 0usize;
    for (ei, a, b, iv) in ops {
        let key = |v: Value| match v {
            Value::Const(c) => UfKey::Const(c),
            Value::Null(n) => UfKey::Null(n, iv),
        };
        match uf.union(key(a), key(b)) {
            Ok(()) => merges += 1,
            Err((c1, c2)) => {
                let render = |k: UfKey| match k {
                    UfKey::Const(c) => c.to_string(),
                    UfKey::Null(n, _) => n.to_string(),
                };
                return Err(TdxError::ChaseFailure {
                    dependency: egd_name(ei),
                    left: render(c1),
                    right: render(c2),
                    interval: Some(iv),
                });
            }
        }
    }
    Ok(merges)
}

/// The coordinator-side tgd step folder: takes enumerated homomorphisms
/// (from worker tasks or partition servers — anywhere), applies the
/// restricted-chase check and inserts head facts with fresh annotated
/// nulls. One instance per chase; both batch engines fold through it.
pub(crate) struct TgdFolder<'a> {
    mapping: &'a SchemaMapping,
    checks: Vec<(Check, Vec<Var>)>,
    memos: Vec<FxHashSet<MemoKey>>,
    pub(crate) nulls: NullGen,
}

impl<'a> TgdFolder<'a> {
    /// A folder for `mapping`'s s-t tgds (one check + memo per tgd).
    pub(crate) fn new(mapping: &'a SchemaMapping) -> Result<TgdFolder<'a>> {
        let checks = mapping
            .st_tgds()
            .iter()
            .map(|tgd| {
                let ex = tgd.existential_vars();
                classify_check(&tgd.head, &ex, mapping.target()).map(|c| (c, ex))
            })
            .collect::<Result<Vec<_>>>()?;
        let memos = checks.iter().map(|_| Default::default()).collect();
        Ok(TgdFolder {
            mapping,
            checks,
            memos,
            nulls: NullGen::new(),
        })
    }

    /// Folds tgd `ti`'s homomorphisms into `target`; returns the number of
    /// steps fired.
    pub(crate) fn fold(
        &mut self,
        ti: usize,
        homs: impl IntoIterator<Item = Hom>,
        target: &mut TemporalInstance,
        sopts: SearchOptions,
    ) -> Result<usize> {
        let tgd = &self.mapping.st_tgds()[ti];
        let mut fired_total = 0usize;
        for (h, iv) in homs {
            let (check, existentials) = &self.checks[ti];
            match check {
                Check::Direct => {
                    let mut fired = false;
                    for atom in &tgd.head {
                        let rel = target_rel(self.mapping, atom)?;
                        let row: Row = instantiate(atom, &h).into();
                        if target.insert(rel, Arc::clone(&row), iv) {
                            register_memo(
                                &mut self.memos,
                                self.checks.iter().map(|(c, _)| c),
                                rel,
                                &row,
                                iv,
                            );
                            fired = true;
                        }
                    }
                    if fired {
                        fired_total += 1;
                    }
                    continue;
                }
                Check::Memo { rel: _, cols } => {
                    let key = memo_probe_key(cols, &tgd.head[0], &h)?;
                    if self.memos[ti].contains(&(key, iv)) {
                        continue;
                    }
                }
                Check::Probe => {
                    if target.exists_match_with(
                        &tgd.head,
                        TemporalMode::Shared,
                        &h,
                        Some(iv),
                        sopts,
                    )? {
                        continue;
                    }
                }
            }
            let mut env = h;
            for v in existentials {
                env.push((*v, Value::Null(self.nulls.fresh())));
            }
            for atom in &tgd.head {
                let rel = target_rel(self.mapping, atom)?;
                let row: Row = instantiate(atom, &env).into();
                if target.insert(rel, Arc::clone(&row), iv) {
                    register_memo(
                        &mut self.memos,
                        self.checks.iter().map(|(c, _)| c),
                        rel,
                        &row,
                        iv,
                    );
                }
            }
            fired_total += 1;
        }
        Ok(fired_total)
    }
}

// ---------------------------------------------------------------------------
// The cluster

/// Respawn budget per server. Three strikes covers a flaky-but-recovering
/// carrier; a server that burns through the whole budget without a clean
/// round in between is quarantined into coordinator-local execution
/// (see [`ServerHealth::Quarantined`]). Unlike the pre-PR 8 budget this
/// is no longer a lifetime count: [`CLEAN_ROUNDS_TO_FORGIVE`] clean
/// rounds decay one respawn back off, so only *concentrated* failures
/// exhaust it.
pub(crate) const MAX_RESPAWNS: u32 = 3;

/// Consecutive fully-clean broadcast rounds after which one respawn is
/// forgiven (decayed off a slot's budget). Long enough that a genuinely
/// flapping server still hits quarantine, short enough that a long-lived
/// durable session shrugs off transient faults spread over hours.
pub(crate) const CLEAN_ROUNDS_TO_FORGIVE: u32 = 8;

/// The health state machine of one server slot.
///
/// `Healthy → Suspect` on any transport fault; `Suspect → Healthy` when
/// clean rounds have decayed the respawn budget back to zero;
/// `Suspect → Quarantined` (terminal for the cluster's lifetime) when the
/// budget is exhausted — the slot's owned blocks then run
/// coordinator-locally on the shared [`ServerState`] kernel, preserving
/// byte-identical results at reduced parallelism.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServerHealth {
    /// No outstanding strikes.
    Healthy,
    /// Failed recently; strikes outstanding, still served remotely.
    Suspect,
    /// Budget exhausted; degraded to coordinator-local execution.
    Quarantined,
}

/// Cumulative wire-traffic counters of one [`DistributedCluster`] — the
/// observable for shipping-discipline tests and the bench notes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TrafficStats {
    /// Protocol frames sent coordinator → servers.
    pub frames_sent: u64,
    /// Total bytes of those frames.
    pub bytes_sent: u64,
    /// Bytes of sync-carrying frames (`ApplyDelta` and the fused rounds —
    /// the traffic the delta-only watermark scheme bounds).
    pub apply_delta_bytes: u64,
    /// Facts actually shipped inside sync programs (appends + delta
    /// blocks; retained-prefix facts count 0).
    pub apply_delta_facts: u64,
    /// Full-barrier round trips: broadcasts where every server was sent a
    /// frame and awaited. The latency currency of the protocol — the
    /// fused v2 rounds exist to shrink this number.
    pub round_trips: u64,
    /// Dead-server respawns performed by the retry path.
    pub respawns: u64,
    /// Servers degraded to coordinator-local execution after exhausting
    /// their respawn budget (see [`ServerHealth::Quarantined`]).
    pub quarantines: u64,
}

/// Per server, per relation: the global gid of each routed fact — the
/// route maps that translate server-local image pairs back.
type RouteMaps = Vec<Vec<Vec<u32>>>;

/// Discovered overlap-image pair groups, in global fact refs.
type PairImages = Vec<Vec<FactRef>>;

/// One routed image set (see [`DistributedCluster::route_lists`]).
struct Routed {
    /// Per server: the concatenated pre + delta lists per relation.
    images: Vec<FactLists>,
    /// Per server: the pre/delta boundary per relation.
    splits: Vec<Vec<u64>>,
    /// The route maps for this routing.
    gids: RouteMaps,
    /// Per server, per relation: fresh flags of the routed delta facts
    /// (empty unless requested).
    fresh: Vec<Vec<Vec<bool>>>,
}

/// Accumulates server-local image pairs, translated through the route maps
/// to global gids and deduplicated across servers — every boundary pair is
/// reported by each server holding both replicas, but an overlapping pair's
/// intersection always lands in a partition both facts are shipped to, so
/// the deduplicated union over the servers is exactly the global pair set
/// of coordinator-local [`discover_images`]
/// (crate::chase::partitioned::discover_images).
struct ImageUnion {
    nrels: usize,
    seen: FxHashSet<(u64, u64)>,
    pairs: Vec<Vec<FactRef>>,
}

impl ImageUnion {
    fn new(nrels: usize) -> Self {
        ImageUnion {
            nrels,
            seen: Default::default(),
            pairs: Vec::new(),
        }
    }

    /// Folds one server's pairs in; `gids` is that server's route map.
    fn absorb(&mut self, s: usize, pairs: Vec<ImagePair>, gids: &[Vec<u32>]) -> Result<()> {
        let translate = |r: u32, local: u32| -> Result<FactRef> {
            let map = gids.get(r as usize).ok_or_else(|| {
                transport_err(s, format!("image pair names unknown relation {r}"))
            })?;
            let gid = map
                .get(local as usize)
                .ok_or_else(|| transport_err(s, format!("image pair gid {local} out of range")))?;
            Ok((RelId(r), *gid))
        };
        debug_assert!(gids.len() == self.nrels);
        for (ra, la, rb, lb) in pairs {
            let (ka, kb) = (pack_ref(translate(ra, la)?), pack_ref(translate(rb, lb)?));
            let key = if ka <= kb { (ka, kb) } else { (kb, ka) };
            if self.seen.insert(key) {
                self.pairs.push(vec![unpack_ref(key.0), unpack_ref(key.1)]);
            }
        }
        Ok(())
    }
}

/// Sorts per-partition wire homs into ascending partition order and
/// re-interns them per tgd — shared by the unfused and fused tgd rounds so
/// both fold byte-identically.
fn fold_wire_homs(
    mut grouped: Vec<super::protocol::PartitionHoms>,
    tgd_count: usize,
) -> Result<Vec<Vec<Hom>>> {
    grouped.sort_by_key(|(p, _)| *p);
    let mut out: Vec<Vec<Hom>> = vec![Vec::new(); tgd_count];
    for (_, per_tgd) in grouped {
        for (ti, homs) in per_tgd.into_iter().enumerate() {
            if ti >= tgd_count {
                return Err(TdxError::Invalid("server returned extra tgd rows".into()));
            }
            out[ti].extend(homs.into_iter().map(|(bind, iv)| {
                (
                    bind.into_iter()
                        .map(|(name, val)| (Var::new(&name), val))
                        .collect::<Vec<_>>(),
                    iv,
                )
            }));
        }
    }
    Ok(out)
}

struct ServerSlot {
    transport: Box<dyn Transport>,
    /// The encoded `Hello` handshake, replayed on respawn.
    hello: Vec<u8>,
    /// Per store: the routed image last acknowledged (concatenated
    /// pre + delta lists and the per-relation split) — the coordinator's
    /// copy of the server's retained image, and the base of the next
    /// watermark diff.
    shipped: [Option<(FactLists, Vec<u64>)>; 2],
    /// Outstanding strikes: decayed by clean rounds, never past zero.
    respawns: u32,
    health: ServerHealth,
    /// Consecutive clean broadcast rounds since the last fault.
    clean_rounds: u32,
}

impl ServerSlot {
    fn new(transport: Box<dyn Transport>, hello: Vec<u8>) -> ServerSlot {
        ServerSlot {
            transport,
            hello,
            shipped: [None, None],
            respawns: 0,
            health: ServerHealth::Healthy,
            clean_rounds: 0,
        }
    }
}

/// Placeholder carrier for a server whose spawn failed outright. Every
/// operation reports the spawn failure, so cluster construction succeeds
/// and the slot enters the ordinary retry path — respawn with backoff,
/// then quarantine — at its first frame, instead of failing the whole
/// chase before the healthy servers even start.
struct DownTransport;

fn down_err() -> std::io::Error {
    std::io::Error::new(
        std::io::ErrorKind::NotConnected,
        "partition server never spawned",
    )
}

impl Transport for DownTransport {
    fn send(&mut self, _frame: &[u8]) -> std::io::Result<()> {
        Err(down_err())
    }

    fn recv(&mut self) -> std::io::Result<Vec<u8>> {
        Err(down_err())
    }

    fn shutdown(&mut self) {}
}

/// The graceful-degradation carrier of a quarantined slot: the same
/// request/response protocol, executed coordinator-locally against the
/// identical deterministic [`ServerState`] kernel a remote server runs.
/// `send` decodes and handles the frame immediately, `recv` yields the
/// buffered response. Infallible for well-formed protocol traffic — so a
/// quarantined slot never re-enters the retry path — and byte-identical
/// to a remote server because the kernel is the same code either way.
struct LocalTransport {
    state: ServerState,
    pending: Option<Vec<u8>>,
}

impl LocalTransport {
    fn new() -> LocalTransport {
        LocalTransport {
            state: ServerState::new(),
            pending: None,
        }
    }
}

impl Transport for LocalTransport {
    fn send(&mut self, frame: &[u8]) -> std::io::Result<()> {
        let invalid = |e: String| std::io::Error::new(std::io::ErrorKind::InvalidData, e);
        let msg = decode::<Message>(frame).map_err(|e| invalid(e.to_string()))?;
        let resp = self.state.handle(msg).map_err(invalid)?;
        self.pending = Some(encode(&resp));
        Ok(())
    }

    fn recv(&mut self) -> std::io::Result<Vec<u8>> {
        self.pending.take().ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::WouldBlock,
                "local slot has no response pending",
            )
        })
    }

    fn shutdown(&mut self) {}
}

/// A coordinator-side handle to a set of partition servers behind a
/// [`Transport`] backend. Owns the server peers; dropping the cluster
/// sends `Shutdown` and joins/reaps them.
pub struct DistributedCluster {
    slots: Vec<ServerSlot>,
    tp: TimelinePartition,
    src_rels: usize,
    tgt_rels: usize,
    servers: usize,
    spawner: Arc<dyn TransportSpawner>,
    traffic: TrafficStats,
    /// Resolved per-frame deadline, applied to every transport at spawn
    /// and respawn (`None` = unbounded).
    deadline: Option<Duration>,
}

fn transport_err(s: usize, e: impl std::fmt::Display) -> TdxError {
    TdxError::Invalid(format!("partition server {s}: {e}"))
}

/// Spawns server `s`'s transport and applies the cluster deadline; either
/// failure yields a [`DownTransport`] placeholder instead of an error, so
/// cluster construction never fails on one bad slot — the retry path
/// picks the placeholder up at its first frame.
fn spawn_transport(
    spawner: &dyn TransportSpawner,
    s: usize,
    deadline: Option<Duration>,
) -> Box<dyn Transport> {
    match spawner.spawn(s) {
        Ok(mut t) => {
            if t.set_deadline(deadline).is_ok() {
                t
            } else {
                t.shutdown();
                Box::new(DownTransport)
            }
        }
        Err(_) => Box::new(DownTransport),
    }
}

/// Deterministic backoff before respawn attempt `attempt` (1-based) of
/// server `s`: exponential in the attempt, capped, plus a jitter derived
/// from `(s, attempt)` by a splitmix64 step — reproducible across runs
/// (no wall-clock or RNG state), yet de-synchronized across servers so a
/// correlated fault does not hammer the spawner in lockstep.
fn respawn_backoff(s: usize, attempt: u32) -> Duration {
    let base = (5u64 << (attempt.saturating_sub(1)).min(6)).min(200);
    let mut z = (s as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ u64::from(attempt);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    Duration::from_millis(base + (z >> 59)) // jitter in 0..32 ms
}

/// Whether `e` came out of the cluster's transport/retry path (a dead or
/// unreachable partition server, or an exhausted respawn budget) rather
/// than a chase failure. The incremental session uses this to replace a
/// cluster that died while it idled with a fresh spawn — one full re-ship
/// — instead of failing the batch.
pub(crate) fn is_transport_error(e: &TdxError) -> bool {
    matches!(e, TdxError::Invalid(msg) if msg.starts_with("partition server"))
}

impl DistributedCluster {
    /// Spawns `servers` partition servers over `tp` on the transport
    /// resolved from the environment (`TDX_CHASE_TRANSPORT`, default
    /// channel), distributing its ranges as contiguous balanced blocks
    /// ([`TimelinePartition::server_of`]). Dependency bodies and schemas
    /// ship as the `Hello` handshake.
    pub fn spawn(
        mapping: &SchemaMapping,
        tp: &TimelinePartition,
        servers: usize,
        sopts: SearchOptions,
    ) -> Result<DistributedCluster> {
        Self::spawn_with(
            mapping,
            tp,
            servers,
            sopts,
            spawner_for(resolve_transport(None)),
        )
    }

    /// [`DistributedCluster::spawn`] on an explicit transport backend.
    pub fn spawn_on(
        mapping: &SchemaMapping,
        tp: &TimelinePartition,
        servers: usize,
        sopts: SearchOptions,
        transport: TransportKind,
    ) -> Result<DistributedCluster> {
        Self::spawn_with(mapping, tp, servers, sopts, spawner_for(transport))
    }

    /// [`DistributedCluster::spawn`] through an arbitrary spawner — the
    /// injection point for fault-injection tests and custom carriers.
    pub fn spawn_with(
        mapping: &SchemaMapping,
        tp: &TimelinePartition,
        servers: usize,
        sopts: SearchOptions,
        spawner: Arc<dyn TransportSpawner>,
    ) -> Result<DistributedCluster> {
        Self::spawn_with_deadline(mapping, tp, servers, sopts, spawner, None)
    }

    /// [`DistributedCluster::spawn_with`] with an explicit per-frame
    /// deadline request (resolved through
    /// [`frame_deadline`](crate::chase::frame_deadline) — `None` consults
    /// `TDX_CHASE_DEADLINE_MS`, `Some(ZERO)` disables deadlines). A spawn
    /// failure no longer fails the cluster: the slot starts on a
    /// [`DownTransport`] placeholder and goes through the retry path — and
    /// eventually quarantine — at the `Hello` handshake.
    pub fn spawn_with_deadline(
        mapping: &SchemaMapping,
        tp: &TimelinePartition,
        servers: usize,
        sopts: SearchOptions,
        spawner: Arc<dyn TransportSpawner>,
        deadline: Option<Duration>,
    ) -> Result<DistributedCluster> {
        let deadline = crate::chase::frame_deadline(deadline);
        let servers = servers.max(1);
        let mut slots = Vec::with_capacity(servers);
        for s in 0..servers {
            let cfg = ServerConfig::for_server(mapping, tp, s, servers, sopts);
            let transport = spawn_transport(&*spawner, s, deadline);
            slots.push(ServerSlot::new(transport, encode(&Message::Hello(cfg))));
        }
        let mut cluster = DistributedCluster {
            slots,
            tp: tp.clone(),
            src_rels: mapping.source().len(),
            tgt_rels: mapping.target().len(),
            servers,
            spawner,
            traffic: TrafficStats::default(),
            deadline,
        };
        // Handshake every server (pipelined like any broadcast round).
        let hellos: Vec<Vec<u8>> = cluster.slots.iter().map(|s| s.hello.clone()).collect();
        for (s, resp) in cluster.broadcast(hellos)?.into_iter().enumerate() {
            if resp != Response::Ready {
                return Err(transport_err(
                    s,
                    format!("unexpected Hello response {resp:?}"),
                ));
            }
        }
        Ok(cluster)
    }

    /// [`DistributedCluster::spawn_with`] for a *recovering* coordinator:
    /// instead of handshaking blank servers, probe each one with the v3
    /// `Resume` frame and **adopt** it — configuration, retained images
    /// and all — when its watermark digests match what this coordinator
    /// expects it to hold: the recovered settled lists (`expected`, source
    /// then target store) routed to that server. An adopted server skips
    /// both the `Hello` and the full image re-ship; any mismatch (blank
    /// server, mid-batch crash leaving mid-round lists, different
    /// configuration) falls back to the ordinary `Hello` handshake, which
    /// resets the server. Returns the cluster and how many servers were
    /// adopted.
    ///
    /// Digests cover *facts*, not pre/delta splits: a surviving server's
    /// split still marks the last round's delta boundary while the
    /// recovered coordinator treats everything as settled. Routing is
    /// per-fact and order-preserving, so `routed(pre ++ delta) =
    /// routed(pre) ++ routed(delta)` per relation — the fact lists agree
    /// even though the boundaries do not, and the next `ApplyDelta` ships
    /// fresh boundaries anyway.
    pub fn resume_with(
        mapping: &SchemaMapping,
        tp: &TimelinePartition,
        servers: usize,
        sopts: SearchOptions,
        spawner: Arc<dyn TransportSpawner>,
        deadline: Option<Duration>,
        expected: [&FactLists; 2],
    ) -> Result<(DistributedCluster, usize)> {
        let deadline = crate::chase::frame_deadline(deadline);
        let servers = servers.max(1);
        let mut slots = Vec::with_capacity(servers);
        let mut cfg_digests = Vec::with_capacity(servers);
        for s in 0..servers {
            let cfg = ServerConfig::for_server(mapping, tp, s, servers, sopts);
            let transport = spawn_transport(&*spawner, s, deadline);
            cfg_digests.push(config_digest(&cfg));
            slots.push(ServerSlot::new(transport, encode(&Message::Hello(cfg))));
        }
        let mut cluster = DistributedCluster {
            slots,
            tp: tp.clone(),
            src_rels: mapping.source().len(),
            tgt_rels: mapping.target().len(),
            servers,
            spawner,
            traffic: TrafficStats::default(),
            deadline,
        };
        // What each surviving server *should* retain: the settled lists
        // routed as all-pre (the delta boundary difference is immaterial —
        // see above).
        let routed = [
            cluster.route_lists(
                cluster.src_rels,
                expected[0],
                &vec![Vec::new(); cluster.src_rels],
                None,
            ),
            cluster.route_lists(
                cluster.tgt_rels,
                expected[1],
                &vec![Vec::new(); cluster.tgt_rels],
                None,
            ),
        ];
        // A server that dies during this probe goes through the ordinary
        // retry path: its respawn replays `Hello` (shipped caches are still
        // empty), the re-sent `Resume` reports unconfigured, and the
        // fallback below re-`Hello`s — harmlessly redundant.
        let mut resumed = 0;
        for (s, resp) in cluster
            .broadcast_same(&Message::Resume)?
            .into_iter()
            .enumerate()
        {
            let adopt = match resp {
                Response::ResumeState {
                    configured,
                    config,
                    images,
                } => {
                    configured
                        && config == cfg_digests[s]
                        && images[0] == image_digest(&routed[0].images[s])
                        && images[1] == image_digest(&routed[1].images[s])
                }
                other => {
                    return Err(transport_err(
                        s,
                        format!("unexpected Resume response {other:?}"),
                    ))
                }
            };
            if adopt {
                resumed += 1;
                for (k, r) in routed.iter().enumerate() {
                    cluster.slots[s].shipped[k] = Some((r.images[s].clone(), r.splits[s].clone()));
                }
            } else {
                // The reset rides the full retry path: a server that dies
                // on its fallback `Hello` is respawned and re-reset, not
                // surfaced as a failed recovery.
                let hello = cluster.slots[s].hello.clone();
                match cluster.request_retried(s, &hello)? {
                    Response::Ready => {}
                    other => {
                        return Err(transport_err(
                            s,
                            format!("unexpected Hello response {other:?}"),
                        ))
                    }
                }
            }
        }
        Ok((cluster, resumed))
    }

    /// Abandons the cluster the way a coordinator crash would: every
    /// carrier is severed — closed with **no** protocol `Shutdown`, no
    /// child reaping, no thread joins — so listen-mode servers keep their
    /// retained images for a successor's [`Resume`](Message::Resume)
    /// handshake. Crash-simulation support for durable sessions.
    pub fn sever(mut self) {
        let mut slots = std::mem::take(&mut self.slots);
        for slot in &mut slots {
            slot.transport.sever();
        }
        // `self` drops with no slots, so its Drop sends nothing; dropping
        // the severed slots is carrier cleanup only (peers already
        // detached).
    }

    /// The timeline partition the cluster was spawned over.
    pub fn partition(&self) -> &TimelinePartition {
        &self.tp
    }

    /// Number of partition servers.
    pub fn servers(&self) -> usize {
        self.servers
    }

    /// The transport backend the cluster runs on.
    pub fn transport(&self) -> TransportKind {
        self.spawner.kind()
    }

    /// Cumulative wire-traffic counters.
    pub fn traffic(&self) -> TrafficStats {
        self.traffic
    }

    /// The health state of server slot `s` (see [`ServerHealth`]).
    pub fn health(&self, s: usize) -> ServerHealth {
        self.slots[s].health
    }

    /// How many slots are currently quarantined (degraded to
    /// coordinator-local execution).
    pub fn quarantined(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.health == ServerHealth::Quarantined)
            .count()
    }

    fn send_counted(&mut self, s: usize, frame: &[u8]) -> std::io::Result<()> {
        self.slots[s].transport.send(frame)?;
        self.traffic.frames_sent += 1;
        self.traffic.bytes_sent += frame.len() as u64;
        Ok(())
    }

    fn recv_decoded(&mut self, s: usize) -> std::io::Result<Response> {
        let bytes = self.slots[s].transport.recv()?;
        decode::<Response>(&bytes)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }

    /// One request/response exchange with no recovery — the building block
    /// `respawn` itself uses.
    fn request_direct(&mut self, s: usize, frame: &[u8]) -> Result<Response> {
        self.send_counted(s, frame)
            .map_err(|e| transport_err(s, e))?;
        self.recv_decoded(s).map_err(|e| transport_err(s, e))
    }

    /// [`request_direct`](Self::request_direct) with the broadcast retry
    /// path behind it: a failed exchange respawns the slot and re-sends
    /// the same frame until it answers, or until quarantine makes the
    /// error terminal.
    fn request_retried(&mut self, s: usize, frame: &[u8]) -> Result<Response> {
        match self.request_direct(s, frame) {
            Ok(resp) => Ok(resp),
            Err(_) => loop {
                self.respawn(s)?;
                match self.request_direct(s, frame) {
                    Ok(resp) => break Ok(resp),
                    Err(e) if self.slots[s].health == ServerHealth::Quarantined => break Err(e),
                    Err(_) => continue,
                }
            },
        }
    }

    /// The retry path: back off, tear the dead server down, spawn a
    /// replacement, replay the `Hello` handshake and both stores' cached
    /// images as full re-ships. On return the server holds exactly the
    /// state it held before it died, so the caller can re-send its
    /// in-flight frame verbatim. A slot that exhausts [`MAX_RESPAWNS`]
    /// consecutive strikes is **quarantined** instead of failing the
    /// chase: its carrier becomes a [`LocalTransport`] running the same
    /// deterministic kernel coordinator-locally, replayed into the same
    /// pre-failure state.
    fn respawn(&mut self, s: usize) -> Result<()> {
        loop {
            self.slots[s].respawns += 1;
            self.traffic.respawns += 1;
            self.slots[s].clean_rounds = 0;
            if self.slots[s].health == ServerHealth::Healthy {
                self.slots[s].health = ServerHealth::Suspect;
            }
            let attempt = self.slots[s].respawns;
            if attempt > MAX_RESPAWNS {
                self.traffic.quarantines += 1;
                self.slots[s].health = ServerHealth::Quarantined;
                self.slots[s].transport.shutdown();
                self.slots[s].transport = Box::new(LocalTransport::new());
                // The local kernel is infallible for the well-formed
                // protocol replay below, so this return is the terminal
                // state of the loop.
                return self.replay_state(s);
            }
            std::thread::sleep(respawn_backoff(s, attempt));
            self.slots[s].transport.shutdown();
            self.slots[s].transport = match self.spawner.spawn(s) {
                Ok(t) => t,
                Err(_) => continue, // another strike, toward quarantine
            };
            if self.slots[s].transport.set_deadline(self.deadline).is_err() {
                continue;
            }
            if self.replay_state(s).is_ok() {
                return Ok(());
            }
        }
    }

    /// Replays slot `s`'s `Hello` handshake and both stores' cached
    /// images as full `Insert` re-ships — the respawn/quarantine tail
    /// that restores a blank peer to its pre-failure state.
    fn replay_state(&mut self, s: usize) -> Result<()> {
        let hello = self.slots[s].hello.clone();
        match self.request_direct(s, &hello)? {
            Response::Ready => {}
            other => {
                return Err(transport_err(
                    s,
                    format!("unexpected Hello response after respawn: {other:?}"),
                ))
            }
        }
        for store in StoreKind::BOTH {
            let Some((image, splits)) = self.slots[s].shipped[store.idx()].clone() else {
                continue;
            };
            let facts: usize = image.iter().map(|l| l.len()).sum();
            let sync: Vec<RelationSync> = image
                .into_iter()
                .zip(&splits)
                .map(|(list, &split)| RelationSync {
                    ops: if list.is_empty() {
                        Vec::new()
                    } else {
                        vec![SyncOp::Insert(list)]
                    },
                    split,
                })
                .collect();
            let frame = encode(&Message::ApplyDelta { store, sync });
            self.traffic.apply_delta_bytes += frame.len() as u64;
            self.traffic.apply_delta_facts += facts as u64;
            match self.request_direct(s, &frame)? {
                Response::Applied => {}
                other => {
                    return Err(transport_err(
                        s,
                        format!("unexpected replay response: {other:?}"),
                    ))
                }
            }
        }
        Ok(())
    }

    /// Round-level health accounting: a slot that got through a whole
    /// broadcast without a fault earns a clean round, and every
    /// [`CLEAN_ROUNDS_TO_FORGIVE`] of those decays one respawn off its
    /// outstanding budget — back to `Healthy` once the budget is clear.
    /// Quarantine is terminal: a local slot stays quarantined (and its
    /// "rounds" are local calls, not evidence about the dead peer).
    fn note_clean_round(&mut self, s: usize) {
        let slot = &mut self.slots[s];
        if slot.health == ServerHealth::Quarantined || slot.respawns == 0 {
            return;
        }
        slot.clean_rounds += 1;
        if slot.clean_rounds >= CLEAN_ROUNDS_TO_FORGIVE {
            slot.clean_rounds = 0;
            slot.respawns -= 1;
            if slot.respawns == 0 {
                slot.health = ServerHealth::Healthy;
            }
        }
    }

    /// Sends one frame per server (frame `s` to server `s`), collects one
    /// response per server in server order. All frames go out before any
    /// response is awaited, so servers work concurrently; a server that
    /// fails at either step goes through the retry path and answers the
    /// same frame on its replacement.
    fn broadcast(&mut self, frames: Vec<Vec<u8>>) -> Result<Vec<Response>> {
        debug_assert_eq!(frames.len(), self.slots.len());
        let n = self.slots.len();
        self.traffic.round_trips += 1;
        let mut out: Vec<Option<Response>> = (0..n).map(|_| None).collect();
        let mut failed = vec![false; n];
        for (s, frame) in frames.iter().enumerate() {
            if self.send_counted(s, frame).is_err() {
                failed[s] = true;
            }
        }
        for (s, slot_out) in out.iter_mut().enumerate() {
            if failed[s] {
                continue;
            }
            match self.recv_decoded(s) {
                Ok(resp) => *slot_out = Some(resp),
                Err(_) => failed[s] = true,
            }
        }
        for s in 0..n {
            if !failed[s] {
                self.note_clean_round(s);
                continue;
            }
            // Keep retrying until the slot answers: each failed attempt
            // burns a strike, so the loop converges — at the latest onto
            // the quarantined local kernel, which fails only on a
            // malformed frame (a coordinator bug worth surfacing, not
            // retrying).
            out[s] = loop {
                self.respawn(s)?;
                match self.request_direct(s, &frames[s]) {
                    Ok(resp) => break Some(resp),
                    Err(e) if self.slots[s].health == ServerHealth::Quarantined => return Err(e),
                    Err(_) => continue,
                }
            };
        }
        // Every slot either answered above or looped through the retry
        // path until it did; an empty slot here is a coordinator bug, and
        // it surfaces as a typed error, not a panic mid-broadcast.
        out.into_iter()
            .enumerate()
            .map(|(s, r)| {
                r.ok_or_else(|| transport_err(s, "server answered no frame after recovery"))
            })
            .collect()
    }

    /// Broadcasts one identical frame to every server.
    fn broadcast_same(&mut self, msg: &Message) -> Result<Vec<Response>> {
        let frame = encode(msg);
        let frames: Vec<Vec<u8>> = (0..self.slots.len()).map(|_| frame.clone()).collect();
        self.broadcast(frames)
    }

    /// Pings every server, recovering dead ones through the retry path.
    /// Callers that held an idle cluster (an incremental session between
    /// batches) run this before trusting it with a round.
    pub fn heartbeat(&mut self) -> Result<()> {
        for (s, resp) in self.broadcast_same(&Message::Ping)?.into_iter().enumerate() {
            if resp != Response::Pong {
                return Err(transport_err(
                    s,
                    format!("unexpected Ping response {resp:?}"),
                ));
            }
        }
        Ok(())
    }

    /// Routes `pre ++ delta` into per-server images: per relation the
    /// concatenated pre + delta facts overlapping each server's owned
    /// ranges (owner + boundary replicas), the boundary between the two
    /// blocks, the *global* gid of every routed fact (its index in the
    /// coordinator's own `pre ++ delta` list — the route map that
    /// translates server-local image pairs back), and, when `fresh` is
    /// given, the routed delta facts' fresh flags.
    fn route_lists(
        &self,
        nrels: usize,
        pre: &FactLists,
        delta: &FactLists,
        fresh: Option<&[Vec<bool>]>,
    ) -> Routed {
        let mut routed = Routed {
            images: vec![vec![Vec::new(); nrels]; self.servers],
            splits: vec![vec![0; nrels]; self.servers],
            gids: vec![vec![Vec::new(); nrels]; self.servers],
            fresh: vec![vec![Vec::new(); nrels]; self.servers],
        };
        for (block, lists) in [pre, delta].into_iter().enumerate() {
            for (r, facts) in lists.iter().enumerate() {
                for (i, fact) in facts.iter().enumerate() {
                    let gid = if block == 0 { i } else { pre[r].len() + i } as u32;
                    let (lo, hi) = self.tp.servers_overlapping(&fact.interval, self.servers);
                    for s in lo..=hi {
                        routed.images[s][r].push(fact.clone());
                        routed.gids[s][r].push(gid);
                        if block == 0 {
                            routed.splits[s][r] += 1;
                        } else if let Some(flags) = fresh {
                            routed.fresh[s][r].push(flags[r][i]);
                        }
                    }
                }
            }
        }
        routed
    }

    /// The sync program for one server against its retained image (see the
    /// module docs), plus the count of facts actually shipped (`Insert`
    /// payloads; retained runs count 0).
    fn sync_program(
        &self,
        store: StoreKind,
        s: usize,
        image: &FactLists,
        splits: &[u64],
    ) -> (Vec<RelationSync>, u64) {
        let empty: FactLists = Vec::new();
        let old = match &self.slots[s].shipped[store.idx()] {
            Some((old_image, _)) => old_image,
            None => &empty,
        };
        let mut shipped_facts = 0u64;
        let sync: Vec<RelationSync> = image
            .iter()
            .enumerate()
            .map(|(r, list)| {
                let ops = diff_ops(old.get(r).map_or(&[][..], |l| l), list);
                shipped_facts += ops
                    .iter()
                    .map(|op| match op {
                        SyncOp::Insert(facts) => facts.len() as u64,
                        SyncOp::Keep { .. } => 0,
                    })
                    .sum::<u64>();
                RelationSync {
                    ops,
                    split: splits[r],
                }
            })
            .collect();
        (sync, shipped_facts)
    }

    /// Syncs the servers' fact lists for `store`: each fact is routed to
    /// every server whose owned ranges its interval overlaps (owner +
    /// boundary replicas), and each server receives only the sync program
    /// against its retained image — runs kept in place, genuinely new
    /// facts inserted (see the module docs).
    pub fn apply_delta(
        &mut self,
        store: StoreKind,
        pre: &FactLists,
        delta: &FactLists,
    ) -> Result<()> {
        let nrels = match store {
            StoreKind::Source => self.src_rels,
            StoreKind::Target => self.tgt_rels,
        };
        let routed = self.route_lists(nrels, pre, delta, None);
        let mut frames = Vec::with_capacity(self.servers);
        for s in 0..self.servers {
            let (sync, shipped_facts) =
                self.sync_program(store, s, &routed.images[s], &routed.splits[s]);
            let frame = encode(&Message::ApplyDelta { store, sync });
            self.traffic.apply_delta_bytes += frame.len() as u64;
            self.traffic.apply_delta_facts += shipped_facts;
            frames.push(frame);
        }
        for (s, resp) in self.broadcast(frames)?.into_iter().enumerate() {
            if resp != Response::Applied {
                return Err(transport_err(
                    s,
                    format!("unexpected response to ApplyDelta: {resp:?}"),
                ));
            }
        }
        for (s, (image, split)) in routed.images.into_iter().zip(routed.splits).enumerate() {
            self.slots[s].shipped[store.idx()] = Some((image, split));
        }
        Ok(())
    }

    /// Ships one fused frame per server — sync program + fresh flags +
    /// discovery request — and collects the responses. The retained-image
    /// cache is updated only *after* the broadcast succeeds, so a server
    /// that dies mid-fused-round is respawned to its pre-frame image and
    /// re-answers the identical frame. Returns the raw responses plus the
    /// per-server route maps for translating image pairs back to global
    /// gids.
    fn fused_exchange(
        &mut self,
        store: StoreKind,
        pre: &FactLists,
        delta: &FactLists,
        fresh: Option<&[Vec<bool>]>,
        discover: bool,
    ) -> Result<(Vec<Response>, RouteMaps)> {
        let nrels = match store {
            StoreKind::Source => self.src_rels,
            StoreKind::Target => self.tgt_rels,
        };
        let mut routed = self.route_lists(nrels, pre, delta, if discover { fresh } else { None });
        let mut frames = Vec::with_capacity(self.servers);
        for s in 0..self.servers {
            let (sync, shipped_facts) =
                self.sync_program(store, s, &routed.images[s], &routed.splits[s]);
            let fresh_s = if discover {
                std::mem::take(&mut routed.fresh[s])
            } else {
                Vec::new()
            };
            let msg = match store {
                StoreKind::Source => Message::TgdRoundFused {
                    sync,
                    fresh: fresh_s,
                    discover,
                },
                StoreKind::Target => Message::EgdRoundFused {
                    sync,
                    fresh: fresh_s,
                    discover,
                },
            };
            let frame = encode(&msg);
            self.traffic.apply_delta_bytes += frame.len() as u64;
            self.traffic.apply_delta_facts += shipped_facts;
            frames.push(frame);
        }
        let resps = self.broadcast(frames)?;
        for (s, (image, split)) in routed.images.into_iter().zip(routed.splits).enumerate() {
            self.slots[s].shipped[store.idx()] = Some((image, split));
        }
        Ok((resps, routed.gids))
    }

    /// One fused tgd round: sync + (optional) Algorithm-1 discovery + match
    /// enumeration in a single round trip per server. Returns the
    /// homomorphisms per tgd (ascending partition order, as
    /// [`run_tgd_round`](Self::run_tgd_round)) and the discovered pair
    /// images translated to global gids and deduplicated across servers.
    pub fn run_tgd_round_fused(
        &mut self,
        pre: &FactLists,
        delta: &FactLists,
        fresh: Option<&[Vec<bool>]>,
        discover: bool,
        tgd_count: usize,
    ) -> Result<(Vec<Vec<Hom>>, PairImages)> {
        let (resps, gids) = self.fused_exchange(StoreKind::Source, pre, delta, fresh, discover)?;
        let mut grouped: Vec<super::protocol::PartitionHoms> = Vec::new();
        let mut images = ImageUnion::new(self.src_rels);
        for (s, resp) in resps.into_iter().enumerate() {
            match resp {
                Response::TgdFused { homs, images: im } => {
                    grouped.extend(homs);
                    images.absorb(s, im, &gids[s])?;
                }
                other => {
                    return Err(transport_err(
                        s,
                        format!("unexpected response to TgdRoundFused: {other:?}"),
                    ))
                }
            }
        }
        Ok((fold_wire_homs(grouped, tgd_count)?, images.pairs))
    }

    /// One fused egd round: sync + (optional) renormalization discovery +
    /// local merge enumeration in a single round trip per server. Returns
    /// the merge ops (ascending partition order, as
    /// [`run_egd_round`](Self::run_egd_round)) and the discovered pair
    /// images in global gids.
    pub fn run_egd_round_fused(
        &mut self,
        pre: &FactLists,
        delta: &FactLists,
        fresh: Option<&[Vec<bool>]>,
        discover: bool,
    ) -> Result<(Vec<MergeOp>, PairImages)> {
        let (resps, gids) = self.fused_exchange(StoreKind::Target, pre, delta, fresh, discover)?;
        let mut grouped: Vec<super::protocol::PartitionMerges> = Vec::new();
        let mut images = ImageUnion::new(self.tgt_rels);
        for (s, resp) in resps.into_iter().enumerate() {
            match resp {
                Response::EgdFused { merges, images: im } => {
                    grouped.extend(merges);
                    images.absorb(s, im, &gids[s])?;
                }
                other => {
                    return Err(transport_err(
                        s,
                        format!("unexpected response to EgdRoundFused: {other:?}"),
                    ))
                }
            }
        }
        grouped.sort_by_key(|(p, _)| *p);
        Ok((
            grouped.into_iter().flat_map(|(_, ops)| ops).collect(),
            images.pairs,
        ))
    }

    /// Runs one tgd round on every server and returns, per tgd, the
    /// enumerated homomorphisms in ascending partition order — the same for
    /// every server count.
    pub fn run_tgd_round(&mut self, tgd_count: usize) -> Result<Vec<Vec<Hom>>> {
        let mut grouped: Vec<(u64, Vec<Vec<super::protocol::WireHom>>)> = Vec::new();
        for (s, resp) in self
            .broadcast_same(&Message::RunTgdRound)?
            .into_iter()
            .enumerate()
        {
            match resp {
                Response::Homs(h) => grouped.extend(h),
                other => {
                    return Err(transport_err(
                        s,
                        format!("unexpected response to RunTgdRound: {other:?}"),
                    ))
                }
            }
        }
        fold_wire_homs(grouped, tgd_count)
    }

    /// Runs one local egd round on every server and returns the merge
    /// operations in ascending partition order.
    pub fn run_egd_round(&mut self) -> Result<Vec<MergeOp>> {
        let mut grouped: Vec<super::protocol::PartitionMerges> = Vec::new();
        for (s, resp) in self
            .broadcast_same(&Message::RunLocalEgdRound)?
            .into_iter()
            .enumerate()
        {
            match resp {
                Response::Merges(ops) => grouped.extend(ops),
                other => {
                    return Err(transport_err(
                        s,
                        format!("unexpected response to RunLocalEgdRound: {other:?}"),
                    ))
                }
            }
        }
        grouped.sort_by_key(|(p, _)| *p);
        Ok(grouped.into_iter().flat_map(|(_, ops)| ops).collect())
    }

    /// Per server: the owned facts and boundary replicas it currently holds
    /// for `store`.
    pub fn snapshots(&mut self, store: StoreKind) -> Result<Vec<(FactLists, FactLists)>> {
        let mut out = Vec::with_capacity(self.servers);
        for (s, resp) in self
            .broadcast_same(&Message::Snapshot { store })?
            .into_iter()
            .enumerate()
        {
            match resp {
                Response::Facts { owned, replicas } => out.push((owned, replicas)),
                other => {
                    return Err(transport_err(
                        s,
                        format!("unexpected response to Snapshot: {other:?}"),
                    ))
                }
            }
        }
        Ok(out)
    }
}

/// The greedy in-order diff behind delta-only shipping: expresses `new` as
/// [`SyncOp`] runs over `old` (facts kept in retained order) plus inserts
/// of the facts not found. Exact — the reconstruction always equals `new`
/// — and *minimal* whenever `new` is an order-preserving subsequence of
/// `old` with fresh facts spliced in, which is precisely how the chase
/// evolves its lists (settling appends; rewriting and re-fragmentation
/// delete in place and append replacements). A hash index over `old`
/// keeps it linear; `Arc` pointer equality short-circuits the common case
/// where a fact object survives rounds untouched.
fn diff_ops(old: &[TemporalFact], new: &[TemporalFact]) -> Vec<SyncOp> {
    use std::collections::VecDeque;
    use std::hash::{Hash, Hasher};
    if old.is_empty() {
        return if new.is_empty() {
            Vec::new()
        } else {
            vec![SyncOp::Insert(new.to_vec())]
        };
    }
    let key = |f: &TemporalFact| -> (u64, Interval) {
        let mut h = tdx_storage::fxhash::FxHasher::default();
        f.data.hash(&mut h);
        (h.finish(), f.interval)
    };
    let mut index: tdx_storage::fxhash::FxHashMap<(u64, Interval), VecDeque<u32>> =
        Default::default();
    for (i, f) in old.iter().enumerate() {
        index.entry(key(f)).or_default().push_back(i as u32);
    }
    let mut ops: Vec<SyncOp> = Vec::new();
    let mut at = 0usize; // next unconsumed position of `old`
    for fact in new {
        let matched = index.get_mut(&key(fact)).and_then(|q| {
            while q.front().is_some_and(|&p| (p as usize) < at) {
                q.pop_front();
            }
            let p = *q.front()? as usize;
            // Verify (hash collisions): equality by content, Arc fast path.
            let o = &old[p];
            (o.interval == fact.interval
                && (Arc::ptr_eq(&o.data, &fact.data) || o.data == fact.data))
                .then(|| {
                    q.pop_front();
                    p
                })
        });
        match matched {
            Some(p) => {
                match ops.last_mut() {
                    Some(SyncOp::Keep { take, .. }) if p == at => *take += 1,
                    _ => ops.push(SyncOp::Keep {
                        skip: (p - at) as u64,
                        take: 1,
                    }),
                }
                at = p + 1;
            }
            None => match ops.last_mut() {
                Some(SyncOp::Insert(facts)) => facts.push(fact.clone()),
                _ => ops.push(SyncOp::Insert(vec![fact.clone()])),
            },
        }
    }
    ops
}

impl Drop for DistributedCluster {
    fn drop(&mut self) {
        let frame = encode(&Message::Shutdown);
        for slot in &mut self.slots {
            let _ = slot.transport.send(&frame);
        }
        for slot in &mut self.slots {
            // Drain the Stopped ack (best effort), then carrier teardown:
            // join the thread / reap the child.
            let _ = slot.transport.recv();
            slot.transport.shutdown();
        }
    }
}

/// Audits that the union of the servers' owner facts equals the
/// coordinator's fact lists (as multisets) — the invariant `ApplyDelta`
/// shipping must maintain. Cheap relative to a chase round; used by the
/// engine after the egd fixpoint (debug builds) and by the protocol tests.
pub fn snapshot_consistent(
    cluster: &mut DistributedCluster,
    store: StoreKind,
    lists: &FactLists,
) -> Result<bool> {
    let mut expected: tdx_storage::fxhash::FxHashMap<(usize, Row, Interval), isize> =
        Default::default();
    for (r, facts) in lists.iter().enumerate() {
        for f in facts {
            *expected
                .entry((r, Arc::clone(&f.data), f.interval))
                .or_default() += 1;
        }
    }
    for (owned, _) in cluster.snapshots(store)? {
        for (r, facts) in owned.iter().enumerate() {
            for f in facts {
                *expected
                    .entry((r, Arc::clone(&f.data), f.interval))
                    .or_default() -= 1;
            }
        }
    }
    Ok(expected.values().all(|&n| n == 0))
}

/// The distributed c-chase. Same contract as
/// [`c_chase_with`](crate::chase::concrete::c_chase_with); dispatched from
/// there for [`ChaseEngine::Distributed`](crate::chase::concrete::ChaseEngine).
pub(crate) fn c_chase_distributed(
    ic: &TemporalInstance,
    mapping: &SchemaMapping,
    opts: &ChaseOptions,
    servers: usize,
) -> Result<CChaseResult> {
    c_chase_distributed_with(
        ic,
        mapping,
        opts,
        servers,
        spawner_for(resolve_transport(opts.transport)),
    )
}

/// [`c_chase_distributed`] through an explicit spawner — the injection
/// point the fault-injection tests use.
pub fn c_chase_distributed_with(
    ic: &TemporalInstance,
    mapping: &SchemaMapping,
    opts: &ChaseOptions,
    servers: usize,
    spawner: Arc<dyn TransportSpawner>,
) -> Result<CChaseResult> {
    let servers = crate::chase::server_count(servers);
    let threads = crate::chase::worker_threads(0);
    let sopts = opts.search_options();
    let mut stats = ChaseStats {
        source_facts_in: ic.total_len(),
        ..ChaseStats::default()
    };
    let mut trace: Vec<String> = Vec::new();
    let log = |opts: &ChaseOptions, trace: &mut Vec<String>, msg: String| {
        if opts.record_trace {
            trace.push(msg);
        }
    };

    // Same coarse timeline partition as the partitioned engine: the count
    // is a locality knob, independent of the server count, which keeps the
    // result byte-identical across cluster sizes.
    let parts_hint = 16;
    let tp = TimelinePartition::new(&ic.endpoints().coarsen(parts_hint));
    let mut cluster = DistributedCluster::spawn_with_deadline(
        mapping,
        &tp,
        servers,
        sopts,
        spawner,
        opts.frame_deadline,
    )?;
    log(
        opts,
        &mut trace,
        format!(
            "distributed chase: {} timeline partitions over {} servers ({:?} transport)",
            tp.len(),
            cluster.servers(),
            cluster.transport()
        ),
    );

    // Steps 1–2, fused: normalize the source w.r.t. the s-t tgd bodies and
    // enumerate the tgd matches. When every body is sweepable the fixpoint
    // runs *optimistically distributed*: each fused frame ships the current
    // lists and asks the servers to both discover Algorithm-1 images over
    // their blocks and enumerate matches. If the folded cuts come back
    // empty the lists were already normal and the piggybacked enumerations
    // are used as-is — the steady state costs one round trip per server.
    // Otherwise the enumerations are discarded, the cuts applied, and the
    // next frame re-ships only the fragments. Generic (>2-atom) bodies and
    // naive mode keep the fixpoint coordinator-local and ship one
    // enumerate-only fused frame.
    let tgd_bodies = mapping.tgd_bodies();
    let nrels_src = mapping.source().len();
    let src_schema = Arc::new(mapping.source().clone());
    let tgds = mapping.st_tgds();
    let mut src_pre: FactLists = vec![Vec::new(); nrels_src];
    let mut src_delta: FactLists = (0..nrels_src)
        .map(|r| ic.facts(RelId(r as u32)).to_vec())
        .collect();
    let src_sweep = (!opts.naive_normalization)
        .then(|| sweep_specs(&src_schema, &tgd_bodies))
        .flatten();
    let homs_per_tgd = match &src_sweep {
        Some(specs) => {
            let discover = !specs.is_empty();
            let mut fresh: Vec<Vec<bool>> = src_delta.iter().map(|d| vec![true; d.len()]).collect();
            loop {
                let (homs, images) = cluster.run_tgd_round_fused(
                    &src_pre,
                    &src_delta,
                    Some(&fresh),
                    discover,
                    tgds.len(),
                )?;
                let mut cuts = CutMap::default();
                image_cuts(&images, &src_pre, &src_delta, &mut cuts);
                base_align_cuts(&src_pre, &src_delta, &mut cuts);
                if cuts.is_empty() {
                    break homs;
                }
                (src_pre, src_delta, fresh) = apply_cuts(nrels_src, &cuts, src_pre, src_delta);
            }
        }
        None => {
            (src_pre, src_delta) = refragment_lists(
                &src_schema,
                &tp,
                threads,
                sopts,
                Some(&tgd_bodies),
                opts.naive_normalization,
                src_pre,
                src_delta,
            )?;
            cluster
                .run_tgd_round_fused(&src_pre, &src_delta, None, false, tgds.len())?
                .0
        }
    };
    stats.source_facts_normalized = src_pre
        .iter()
        .chain(src_delta.iter())
        .map(|l| l.len())
        .sum();
    log(
        opts,
        &mut trace,
        format!(
            "normalized source w.r.t. Σst: {} → {} facts",
            stats.source_facts_in, stats.source_facts_normalized
        ),
    );
    let mut target = TemporalInstance::new(Arc::new(mapping.target().clone()));
    let mut folder = TgdFolder::new(mapping)?;
    for (ti, homs) in homs_per_tgd.into_iter().enumerate() {
        stats.tgd_steps += folder.fold(ti, homs, &mut target, sopts)?;
    }
    stats.nulls_created = folder.nulls.peek();
    stats.target_facts_after_tgd = target.total_len();
    log(
        opts,
        &mut trace,
        format!("tgd round: {} steps fired", stats.tgd_steps),
    );

    // Steps 3–4: initial target normalization on the coordinator, then
    // local egd rounds on the servers with the global union-find (and the
    // rewrite/re-fragmentation it implies) on the coordinator.
    let tgt_schema = target.schema_arc();
    let nrels_tgt = tgt_schema.len();
    let egd_bodies = mapping.egd_bodies();
    if egd_bodies.is_empty() && target.nulls().is_empty() {
        stats.target_facts_normalized = target.total_len();
        if opts.coalesce_result {
            target = target.coalesced();
        }
        stats.target_facts_out = target.total_len();
        return Ok(CChaseResult {
            target,
            normalized_source: lists_to_instance(&src_schema, &src_pre, &src_delta),
            stats,
            trace,
        });
    }
    let mut pre: FactLists = vec![Vec::new(); nrels_tgt];
    let mut delta: FactLists = (0..nrels_tgt)
        .map(|r| target.facts(RelId(r as u32)).to_vec())
        .collect();
    let egds = mapping.egds();
    let tgt_sweep = (!opts.naive_normalization)
        .then(|| sweep_specs(&tgt_schema, &egd_bodies))
        .flatten();
    let mut fresh: Vec<Vec<bool>> = delta.iter().map(|d| vec![true; d.len()]).collect();
    // Step 3's initial normalization is always w.r.t. Σeg; after each
    // union-find rewrite, re-discovery is the
    // `renormalize_between_egd_rounds` knob (alignment cuts always run).
    let mut discover_round = true;
    let mut normalized_recorded = false;
    let mut first_round = true;
    loop {
        // Normalize the current lists, then enumerate merges — through the
        // optimistic fused fixpoint when the egd bodies are sweepable, or a
        // coordinator-local fixpoint plus one enumerate-only frame when not.
        let ops = match &tgt_sweep {
            Some(specs) => loop {
                let (ops, images) = cluster.run_egd_round_fused(
                    &pre,
                    &delta,
                    Some(&fresh),
                    discover_round && !specs.is_empty(),
                )?;
                let mut cuts = CutMap::default();
                if discover_round {
                    image_cuts(&images, &pre, &delta, &mut cuts);
                }
                base_align_cuts(&pre, &delta, &mut cuts);
                if cuts.is_empty() {
                    break ops;
                }
                (pre, delta, fresh) = apply_cuts(nrels_tgt, &cuts, pre, delta);
            },
            None => {
                let renorm = discover_round.then_some(egd_bodies.as_slice());
                (pre, delta) = refragment_lists(
                    &tgt_schema,
                    &tp,
                    threads,
                    sopts,
                    renorm,
                    opts.naive_normalization,
                    std::mem::take(&mut pre),
                    std::mem::take(&mut delta),
                )?;
                cluster.run_egd_round_fused(&pre, &delta, None, false)?.0
            }
        };
        if !normalized_recorded {
            normalized_recorded = true;
            stats.target_facts_normalized = pre.iter().chain(delta.iter()).map(|l| l.len()).sum();
        }
        let mut uf = AnnotatedUnionFind::new();
        let merges = fold_merge_ops(
            ops.into_iter()
                .map(|(ei, a, b, iv)| (ei as usize, a, b, iv)),
            &mut uf,
            |ei| {
                let egd = &egds[ei];
                egd.name.clone().unwrap_or_else(|| egd.to_string())
            },
        )?;
        if merges == 0 {
            break;
        }
        stats.egd_rounds += 1;
        stats.egd_merges += merges;
        if !first_round {
            stats.egd_delta_rounds += 1;
        }
        first_round = false;
        log(
            opts,
            &mut trace,
            format!(
                "egd round {}: {merges} identifications from local server rounds",
                stats.egd_rounds
            ),
        );
        (pre, delta) = rewrite_values(&tgt_schema, &pre, &delta, &mut uf);
        if tgt_sweep.is_some() {
            fresh = delta.iter().map(|d| vec![true; d.len()]).collect();
        }
        discover_round = opts.renormalize_between_egd_rounds;
    }

    // The servers' owner blocks must tile the coordinator's target exactly —
    // the shipping invariant the protocol relies on. The audit re-serializes
    // the whole target through `Snapshot`, so it runs in debug builds and
    // the protocol tests (`tests/distributed.rs`), not on release chases.
    if cfg!(debug_assertions) {
        let settled: FactLists = pre
            .iter()
            .zip(delta.iter())
            .map(|(p, d)| p.iter().chain(d.iter()).cloned().collect())
            .collect();
        if !snapshot_consistent(&mut cluster, StoreKind::Target, &settled)? {
            return Err(TdxError::Invalid(
                "distributed chase: server snapshots diverged from the coordinator".into(),
            ));
        }
    }

    let mut target = lists_to_instance(&tgt_schema, &pre, &delta);
    if opts.coalesce_result {
        target = target.coalesced();
    }
    stats.target_facts_out = target.total_len();
    Ok(CChaseResult {
        target,
        normalized_source: lists_to_instance(&src_schema, &src_pre, &src_delta),
        stats,
        trace,
    })
}

fn lists_to_instance(schema: &Arc<Schema>, pre: &FactLists, delta: &FactLists) -> TemporalInstance {
    let mut out = TemporalInstance::new(Arc::clone(schema));
    for (r, (p, d)) in pre.iter().zip(delta.iter()).enumerate() {
        let rel = RelId(r as u32);
        for fact in p.iter().chain(d.iter()) {
            out.insert(rel, Arc::clone(&fact.data), fact.interval);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chase::cluster::transport::{ChannelSpawner, FaultInjector};
    use crate::chase::concrete::c_chase_with;
    use crate::hom::hom_equivalent;
    use crate::semantics::semantics;
    use tdx_logic::{parse_egd, parse_schema, parse_tgd};

    fn iv(s: u64, e: u64) -> Interval {
        Interval::new(s, e)
    }

    fn paper_mapping() -> SchemaMapping {
        SchemaMapping::new(
            parse_schema("E(name, company). S(name, salary).").unwrap(),
            parse_schema("Emp(name, company, salary).").unwrap(),
            vec![
                parse_tgd("E(n,c) -> Emp(n,c,s)").unwrap().named("st1"),
                parse_tgd("E(n,c) & S(n,s) -> Emp(n,c,s)")
                    .unwrap()
                    .named("st2"),
            ],
            vec![parse_egd("Emp(n,c,s) & Emp(n,c,s2) -> s = s2")
                .unwrap()
                .named("fd")],
        )
        .unwrap()
    }

    fn figure4(mapping: &SchemaMapping) -> TemporalInstance {
        let mut i = TemporalInstance::new(Arc::new(mapping.source().clone()));
        i.insert_strs("E", &["Ada", "IBM"], iv(2012, 2014));
        i.insert_strs("E", &["Ada", "Google"], Interval::from(2014));
        i.insert_strs("E", &["Bob", "IBM"], iv(2013, 2018));
        i.insert_strs("S", &["Ada", "18k"], Interval::from(2013));
        i.insert_strs("S", &["Bob", "13k"], Interval::from(2015));
        i
    }

    #[test]
    fn matches_the_sequential_engine_across_server_counts() {
        let mapping = paper_mapping();
        let source = figure4(&mapping);
        let seq = c_chase_with(&source, &mapping, &ChaseOptions::default()).unwrap();
        for servers in [1usize, 2, 3, 5] {
            let dist =
                c_chase_with(&source, &mapping, &ChaseOptions::distributed(servers)).unwrap();
            assert!(
                hom_equivalent(&semantics(&seq.target), &semantics(&dist.target)),
                "servers = {servers}"
            );
            assert_eq!(dist.target.nulls().len(), seq.target.nulls().len());
        }
    }

    #[test]
    fn deterministic_across_server_counts() {
        let mapping = paper_mapping();
        let source = figure4(&mapping);
        let one = c_chase_with(&source, &mapping, &ChaseOptions::distributed(1)).unwrap();
        for servers in [2usize, 3, 4, 7] {
            let many =
                c_chase_with(&source, &mapping, &ChaseOptions::distributed(servers)).unwrap();
            assert_eq!(one.target, many.target, "servers = {servers}");
        }
    }

    #[test]
    fn deterministic_across_transports() {
        // The transport is a carrier, not a participant: channel and TCP
        // runs are byte-identical.
        let mapping = paper_mapping();
        let source = figure4(&mapping);
        let channel = c_chase_with(
            &source,
            &mapping,
            &ChaseOptions::distributed(2).on_transport(TransportKind::Channel),
        )
        .unwrap();
        let tcp = c_chase_with(
            &source,
            &mapping,
            &ChaseOptions::distributed(2).on_transport(TransportKind::Tcp),
        )
        .unwrap();
        assert_eq!(channel.target, tcp.target);
        assert_eq!(channel.stats, tcp.stats);
    }

    #[test]
    fn failure_on_conflicting_sources() {
        let mapping = paper_mapping();
        let mut ic = TemporalInstance::new(Arc::new(mapping.source().clone()));
        ic.insert_strs("E", &["Ada", "IBM"], iv(0, 10));
        ic.insert_strs("S", &["Ada", "18k"], iv(0, 10));
        ic.insert_strs("S", &["Ada", "20k"], iv(5, 15));
        for servers in [1usize, 3] {
            let err = c_chase_with(&ic, &mapping, &ChaseOptions::distributed(servers)).unwrap_err();
            assert!(
                matches!(err, TdxError::ChaseFailure { .. }),
                "servers = {servers}: {err:?}"
            );
        }
    }

    #[test]
    fn empty_source_and_trace() {
        let mapping = paper_mapping();
        let ic = TemporalInstance::new(Arc::new(mapping.source().clone()));
        let result = c_chase_with(&ic, &mapping, &ChaseOptions::distributed(2)).unwrap();
        assert!(result.target.is_empty());
        let opts = ChaseOptions {
            record_trace: true,
            coalesce_result: true,
            ..ChaseOptions::distributed(2)
        };
        let source = figure4(&mapping);
        let result = c_chase_with(&source, &mapping, &opts).unwrap();
        assert!(result.target.is_coalesced());
        assert!(result.trace.iter().any(|l| l.contains("servers")));
    }

    #[test]
    fn unbounded_boundary_facts_are_replicated_to_the_server_tail() {
        // An unbounded fact must be shipped to its owner and to every later
        // server (it overlaps all of their ranges) — visible as a replica in
        // their snapshots.
        let mapping = paper_mapping();
        let tp = TimelinePartition::new(&tdx_temporal::Breakpoints::from_points([10, 20, 30]));
        let mut cluster =
            DistributedCluster::spawn(&mapping, &tp, 2, SearchOptions::default()).unwrap();
        use tdx_storage::row;
        let unbounded = TemporalFact {
            data: row([Value::str("Ada"), Value::str("IBM")]),
            interval: Interval::from(15), // owner partition 1 (server 0), crosses into server 1
        };
        let bounded = TemporalFact {
            data: row([Value::str("Bob"), Value::str("IBM")]),
            interval: iv(0, 5), // stays on server 0
        };
        assert!(unbounded.interval.is_unbounded());
        let pre: FactLists = vec![vec![unbounded.clone(), bounded.clone()], vec![]];
        let delta: FactLists = vec![Vec::new(); 2];
        cluster
            .apply_delta(StoreKind::Source, &pre, &delta)
            .unwrap();
        let snaps = cluster.snapshots(StoreKind::Source).unwrap();
        assert_eq!(snaps.len(), 2);
        // Server 0 owns both facts; server 1 holds the unbounded one only,
        // as a replica.
        assert_eq!(snaps[0].0[0].len(), 2);
        assert!(snaps[0].1[0].is_empty());
        assert!(snaps[1].0[0].is_empty());
        assert_eq!(snaps[1].1[0], vec![unbounded]);
        // And the owner multiset matches the coordinator's lists.
        assert!(snapshot_consistent(&mut cluster, StoreKind::Source, &pre).unwrap());
    }

    #[test]
    fn delta_only_shipping_skips_the_retained_prefix() {
        use tdx_storage::row;
        let mapping = paper_mapping();
        let tp = TimelinePartition::new(&tdx_temporal::Breakpoints::from_points([10, 20]));
        let mut cluster =
            DistributedCluster::spawn(&mapping, &tp, 1, SearchOptions::default()).unwrap();
        let fact = |name: &str, s: u64| TemporalFact {
            data: row([Value::str(name), Value::str("IBM")]),
            interval: iv(s, s + 3),
        };
        // Round 1: full ship of 100 facts.
        let mut pre: FactLists = vec![(0..100).map(|i| fact("Ada", i)).collect(), Vec::new()];
        cluster
            .apply_delta(StoreKind::Source, &pre, &vec![Vec::new(); 2])
            .unwrap();
        let full = cluster.traffic();
        assert_eq!(full.apply_delta_facts, 100);
        // Round 2: same lists + 2 appended facts → only the suffix ships.
        pre[0].push(fact("Bob", 50));
        pre[0].push(fact("Cyd", 60));
        cluster
            .apply_delta(StoreKind::Source, &pre, &vec![Vec::new(); 2])
            .unwrap();
        let after = cluster.traffic();
        assert_eq!(after.apply_delta_facts - full.apply_delta_facts, 2);
        assert!(
            (after.apply_delta_bytes - full.apply_delta_bytes) * 10 < full.apply_delta_bytes,
            "suffix ship must be an order of magnitude under the full ship: {after:?} vs {full:?}"
        );
        // The server's reconstructed image still tiles the coordinator's.
        assert!(snapshot_consistent(&mut cluster, StoreKind::Source, &pre).unwrap());
        // Round 3: a rewrite in the middle ships only the rewritten fact —
        // the kept runs around it stay on the server.
        pre[0][10] = fact("Eve", 10);
        cluster
            .apply_delta(StoreKind::Source, &pre, &vec![Vec::new(); 2])
            .unwrap();
        let rewritten = cluster.traffic();
        assert_eq!(rewritten.apply_delta_facts - after.apply_delta_facts, 1);
        assert!(snapshot_consistent(&mut cluster, StoreKind::Source, &pre).unwrap());
    }

    #[test]
    fn diff_ops_reconstructs_and_is_minimal_on_chase_shaped_edits() {
        use tdx_storage::row;
        let f = |name: &str, s: u64| TemporalFact {
            data: row([Value::str(name), Value::int(s as i64)]),
            interval: iv(s, s + 2),
        };
        let reconstruct = |old: &[TemporalFact], ops: &[SyncOp]| -> Vec<TemporalFact> {
            let mut out = Vec::new();
            let mut at = 0usize;
            for op in ops {
                match op {
                    SyncOp::Keep { skip, take } => {
                        at += *skip as usize;
                        out.extend_from_slice(&old[at..at + *take as usize]);
                        at += *take as usize;
                    }
                    SyncOp::Insert(facts) => out.extend(facts.iter().cloned()),
                }
            }
            out
        };
        let inserted = |ops: &[SyncOp]| -> usize {
            ops.iter()
                .map(|op| match op {
                    SyncOp::Insert(facts) => facts.len(),
                    SyncOp::Keep { .. } => 0,
                })
                .sum()
        };
        let old: Vec<TemporalFact> = (0..50).map(|i| f("a", i)).collect();
        // Append-only (settling): one kept run + suffix.
        let mut appended = old.clone();
        appended.push(f("b", 100));
        let ops = diff_ops(&old, &appended);
        assert_eq!(reconstruct(&old, &ops), appended);
        assert_eq!(inserted(&ops), 1);
        // Mid-list deletions + replacements appended (a rewrite round).
        let mut rewritten: Vec<TemporalFact> = old
            .iter()
            .filter(|x| x.interval.start() % 7 != 0)
            .cloned()
            .collect();
        rewritten.push(f("rw", 7));
        rewritten.push(f("rw", 14));
        let ops = diff_ops(&old, &rewritten);
        assert_eq!(reconstruct(&old, &ops), rewritten);
        assert_eq!(inserted(&ops), 2);
        // Duplicates keep multiset semantics.
        let dup = vec![f("d", 1), f("d", 1), f("x", 2)];
        let new = vec![f("d", 1), f("x", 2), f("d", 1)];
        let ops = diff_ops(&dup, &new);
        assert_eq!(reconstruct(&dup, &ops), new);
        // Empty transitions.
        assert!(diff_ops(&[], &[]).is_empty());
        assert_eq!(inserted(&diff_ops(&[], &old)), 50);
        assert_eq!(
            reconstruct(&old, &diff_ops(&old, &[])),
            Vec::<TemporalFact>::new()
        );
    }

    #[test]
    fn retry_path_respawns_a_killed_server_and_restores_the_fixpoint() {
        // Kill server 1 of 3 at every frame offset it ever reaches — the
        // handshake, then each fused round — until the injector stops
        // tripping; the retry path must respawn it, replay its watermarked
        // (pre-frame) images and finish with a result hom-equivalent to
        // (indeed byte-identical to) an unfaulted channel run.
        let mapping = paper_mapping();
        let source = figure4(&mapping);
        let clean = c_chase_with(&source, &mapping, &ChaseOptions::distributed(3)).unwrap();
        let mut kill_after = 0usize;
        loop {
            let injector = Arc::new(FaultInjector::new(Arc::new(ChannelSpawner), 1, kill_after));
            let faulted = c_chase_distributed_with(
                &source,
                &mapping,
                &ChaseOptions::distributed(3),
                3,
                Arc::clone(&injector) as Arc<dyn TransportSpawner>,
            )
            .unwrap_or_else(|e| panic!("kill_after {kill_after}: chase failed: {e:?}"));
            assert_eq!(
                clean.target, faulted.target,
                "kill_after {kill_after}: retry path diverged"
            );
            assert!(hom_equivalent(
                &semantics(&clean.target),
                &semantics(&faulted.target)
            ));
            if !injector.tripped() {
                break; // past the last frame the victim ever sees
            }
            kill_after += 1;
            assert!(kill_after < 64, "fault matrix did not converge");
        }
        assert!(
            kill_after >= 2,
            "matrix stopped at offset {kill_after} before reaching a fused round"
        );
    }

    /// A spawner whose every transport dies on its first frame, counting
    /// the spawns it served.
    struct AlwaysDead(std::sync::atomic::AtomicUsize);

    struct DeadTransport;

    impl Transport for DeadTransport {
        fn send(&mut self, _: &[u8]) -> std::io::Result<()> {
            Err(std::io::Error::new(std::io::ErrorKind::BrokenPipe, "dead"))
        }
        fn recv(&mut self) -> std::io::Result<Vec<u8>> {
            Err(std::io::Error::new(std::io::ErrorKind::BrokenPipe, "dead"))
        }
        fn shutdown(&mut self) {}
    }

    impl TransportSpawner for AlwaysDead {
        fn spawn(&self, _: usize) -> std::io::Result<Box<dyn Transport>> {
            self.0.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            Ok(Box::new(DeadTransport))
        }
        fn kind(&self) -> TransportKind {
            TransportKind::Channel
        }
    }

    #[test]
    fn respawn_budget_is_bounded_and_ends_in_quarantine() {
        // A server that dies on every frame exhausts MAX_RESPAWNS — the
        // spawner is retried a bounded number of times, never in a loop —
        // and is then quarantined onto the coordinator-local kernel: the
        // cluster construction *succeeds* and the slot answers protocol
        // traffic locally.
        let mapping = paper_mapping();
        let tp = TimelinePartition::new(&tdx_temporal::Breakpoints::from_points([10]));
        let spawner = Arc::new(AlwaysDead(std::sync::atomic::AtomicUsize::new(0)));
        let cluster = DistributedCluster::spawn_with(
            &mapping,
            &tp,
            1,
            SearchOptions::default(),
            Arc::clone(&spawner) as Arc<dyn TransportSpawner>,
        )
        .expect("a permanently dead server degrades to local execution, not failure");
        assert_eq!(cluster.health(0), ServerHealth::Quarantined);
        assert_eq!(cluster.quarantined(), 1);
        assert_eq!(cluster.traffic().quarantines, 1);
        // Initial spawn + MAX_RESPAWNS retries, then quarantine: the
        // budget bounds how often the spawner is hammered.
        assert_eq!(
            spawner.0.load(std::sync::atomic::Ordering::SeqCst),
            1 + MAX_RESPAWNS as usize
        );
    }

    #[test]
    fn quarantined_chase_completes_byte_identical() {
        // The full batch chase with server 1 of 3 permanently dead: its
        // blocks degrade to coordinator-local execution and the result is
        // byte-identical to a healthy run.
        struct DeadOne(Arc<dyn TransportSpawner>);
        impl TransportSpawner for DeadOne {
            fn spawn(&self, s: usize) -> std::io::Result<Box<dyn Transport>> {
                if s == 1 {
                    Ok(Box::new(DeadTransport))
                } else {
                    self.0.spawn(s)
                }
            }
            fn kind(&self) -> TransportKind {
                self.0.kind()
            }
        }
        let mapping = paper_mapping();
        let source = figure4(&mapping);
        let clean = c_chase_with(&source, &mapping, &ChaseOptions::distributed(3)).unwrap();
        let degraded = c_chase_distributed_with(
            &source,
            &mapping,
            &ChaseOptions::distributed(3),
            3,
            Arc::new(DeadOne(Arc::new(ChannelSpawner))),
        )
        .expect("quarantine must complete the chase, not fail it");
        assert_eq!(clean.target, degraded.target, "local degradation diverged");
    }

    #[test]
    fn clean_rounds_decay_the_respawn_budget() {
        // One strike, then CLEAN_ROUNDS_TO_FORGIVE clean heartbeats: the
        // budget decays back to zero and the slot returns to Healthy — a
        // long-lived session is not one transient fault closer to
        // quarantine forever.
        let mapping = paper_mapping();
        let tp = TimelinePartition::new(&tdx_temporal::Breakpoints::from_points([10]));
        let injector = Arc::new(FaultInjector::new(Arc::new(ChannelSpawner), 0, 1));
        let mut cluster = DistributedCluster::spawn_with(
            &mapping,
            &tp,
            1,
            SearchOptions::default(),
            injector as Arc<dyn TransportSpawner>,
        )
        .unwrap();
        // The Hello consumed the one pre-fault frame; the first heartbeat
        // trips the fault, and the respawned carrier is clean.
        cluster.heartbeat().unwrap();
        assert_eq!(cluster.health(0), ServerHealth::Suspect);
        assert_eq!(cluster.traffic().respawns, 1);
        for _ in 0..CLEAN_ROUNDS_TO_FORGIVE {
            assert_eq!(cluster.health(0), ServerHealth::Suspect);
            cluster.heartbeat().unwrap();
        }
        assert_eq!(cluster.health(0), ServerHealth::Healthy);
    }
}
