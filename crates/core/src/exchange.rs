//! The high-level data exchange facade.
//!
//! [`DataExchange`] bundles a validated schema mapping with the operations a
//! user of the library actually performs: materialize a concrete solution,
//! chase the abstract view, answer queries with certain-answer semantics,
//! and verify results.

use crate::abstract_view::AbstractInstance;
use crate::chase::abstract_chase::abstract_chase;
use crate::chase::concrete::{c_chase_with, CChaseResult, ChaseOptions};
use crate::error::Result;
use crate::query::certain::{certain_answers_abstract, EpochAnswers};
use crate::query::concrete::{naive_eval_concrete_with, TemporalAnswers};
use crate::semantics::semantics;
use crate::verify::is_solution_concrete;
use std::sync::Arc;
use tdx_logic::{Schema, SchemaMapping, UnionQuery};
use tdx_storage::TemporalInstance;

/// A configured temporal data exchange engine.
pub struct DataExchange {
    mapping: SchemaMapping,
    options: ChaseOptions,
}

impl DataExchange {
    /// Wraps a validated schema mapping with default chase options.
    pub fn new(mapping: SchemaMapping) -> DataExchange {
        DataExchange {
            mapping,
            options: ChaseOptions::default(),
        }
    }

    /// Overrides the chase options.
    pub fn with_options(mut self, options: ChaseOptions) -> DataExchange {
        self.options = options;
        self
    }

    /// The schema mapping `M = (R_S, R_T, Σ_st, Σ_eg)`.
    pub fn mapping(&self) -> &SchemaMapping {
        &self.mapping
    }

    /// The chase options in effect.
    pub fn options(&self) -> &ChaseOptions {
        &self.options
    }

    /// An empty concrete source instance over `R_S`, ready to be filled.
    pub fn new_source(&self) -> TemporalInstance {
        TemporalInstance::new(Arc::new(self.mapping.source().clone()))
    }

    /// Loads a source instance from fact-file text
    /// (`E(Ada, IBM) @ [2012, 2014)`, one fact per line; see
    /// [`tdx_logic::parse_facts`]). Sources must be complete (paper
    /// Section 2): named nulls (`_x`) are rejected.
    pub fn load_source(&self, text: &str) -> Result<TemporalInstance> {
        load_instance(self.mapping.source(), text, false, "source")
    }

    /// Loads a candidate *target* instance from fact-file text. Target
    /// instances may contain named labeled nulls (`_x` — the annotated null
    /// `x` of this file, annotated with the fact's interval). Useful
    /// together with [`DataExchange::verify_solution`].
    pub fn load_target(&self, text: &str) -> Result<TemporalInstance> {
        load_instance(self.mapping.target(), text, true, "target")
    }

    /// The source schema.
    pub fn source_schema(&self) -> &Schema {
        self.mapping.source()
    }

    /// The target schema.
    pub fn target_schema(&self) -> &Schema {
        self.mapping.target()
    }

    /// Materializes a concrete solution via the c-chase (Section 4.3).
    pub fn exchange(&self, source: &TemporalInstance) -> Result<CChaseResult> {
        c_chase_with(source, &self.mapping, &self.options)
    }

    /// Opens a stateful incremental session: the target stays materialized
    /// between calls and each [`DeltaBatch`](crate::chase::incremental::DeltaBatch)
    /// of source changes re-runs only the affected chase work (see
    /// [`IncrementalExchange`](crate::chase::incremental::IncrementalExchange)).
    pub fn incremental(&self) -> Result<crate::chase::incremental::IncrementalExchange> {
        crate::chase::incremental::IncrementalExchange::with_options(
            self.mapping.clone(),
            self.options.clone(),
        )
    }

    /// Opens a *durable* incremental session persisting into `state_dir`:
    /// committed batches are write-ahead logged, state is periodically
    /// compacted into an atomic snapshot, and opening the same directory
    /// again recovers the session exactly — reconnecting to surviving
    /// partition servers on the TCP transport (see
    /// [`DurableExchange`](crate::chase::durable::DurableExchange)).
    pub fn durable(
        &self,
        state_dir: impl Into<std::path::PathBuf>,
    ) -> Result<crate::chase::durable::DurableExchange> {
        crate::chase::durable::DurableExchange::open(
            self.mapping.clone(),
            self.options.clone(),
            state_dir,
        )
    }

    /// Chases the abstract view of a concrete source (Section 3); mostly
    /// useful for validation and the experiments.
    pub fn exchange_abstract(&self, source: &TemporalInstance) -> Result<AbstractInstance> {
        abstract_chase(&semantics(source), &self.mapping)
    }

    /// Certain answers of `q` for `source` (Corollary 22): c-chase plus
    /// naïve evaluation of `q⁺`.
    pub fn certain_answers(
        &self,
        source: &TemporalInstance,
        q: &UnionQuery,
    ) -> Result<TemporalAnswers> {
        let solution = self.exchange(source)?;
        naive_eval_concrete_with(&solution.target, q, self.options.search_options())
    }

    /// Certain answers via the abstract route (for cross-checking).
    pub fn certain_answers_abstract(
        &self,
        source: &TemporalInstance,
        q: &UnionQuery,
    ) -> Result<EpochAnswers> {
        certain_answers_abstract(source, &self.mapping, q)
    }

    /// Verifies that `jc` is a concrete solution for `source`.
    pub fn verify_solution(
        &self,
        source: &TemporalInstance,
        jc: &TemporalInstance,
    ) -> Result<bool> {
        is_solution_concrete(source, jc, &self.mapping)
    }
}

fn load_instance(
    schema: &Schema,
    text: &str,
    allow_nulls: bool,
    side: &str,
) -> Result<TemporalInstance> {
    use crate::error::TdxError;
    let facts = tdx_logic::parse_facts(text).map_err(|e| TdxError::Invalid(e.to_string()))?;
    let mut out = TemporalInstance::new(Arc::new(schema.clone()));
    let mut null_names: tdx_storage::fxhash::FxHashMap<tdx_logic::Symbol, tdx_storage::NullId> =
        Default::default();
    let mut next_null = 0u64;
    for f in facts {
        let rel = schema.rel_id(f.relation).ok_or_else(|| {
            TdxError::Invalid(format!(
                "fact relation {} is not in the {side} schema",
                f.relation
            ))
        })?;
        let arity = schema.relation(rel).arity();
        if arity != f.values.len() {
            return Err(TdxError::Invalid(format!(
                "fact {}(…) has {} values, relation has arity {arity}",
                f.relation,
                f.values.len()
            )));
        }
        let data: Result<Vec<tdx_storage::Value>> = f
            .values
            .iter()
            .map(|t| match t {
                tdx_logic::FactTerm::Const(c) => Ok(tdx_storage::Value::Const(*c)),
                tdx_logic::FactTerm::Null(name) => {
                    if !allow_nulls {
                        return Err(TdxError::Invalid(format!(
                            "{side} instances must be complete; found null {name}"
                        )));
                    }
                    let id = *null_names.entry(*name).or_insert_with(|| {
                        let id = tdx_storage::NullId(next_null);
                        next_null += 1;
                        id
                    });
                    Ok(tdx_storage::Value::Null(id))
                }
            })
            .collect();
        out.insert(rel, data?.into(), f.interval);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdx_logic::{parse_mapping, parse_query};
    use tdx_temporal::Interval;

    fn iv(s: u64, e: u64) -> Interval {
        Interval::new(s, e)
    }

    fn engine() -> DataExchange {
        DataExchange::new(
            parse_mapping(
                "source { E(name, company)  S(name, salary) }\n\
                 target { Emp(name, company, salary) }\n\
                 tgd st1: E(n,c) -> exists s . Emp(n,c,s)\n\
                 tgd st2: E(n,c) & S(n,s) -> Emp(n,c,s)\n\
                 egd fd: Emp(n,c,s) & Emp(n,c,s2) -> s = s2\n",
            )
            .unwrap(),
        )
    }

    #[test]
    fn end_to_end_paper_example() {
        let ex = engine();
        let mut src = ex.new_source();
        src.insert_strs("E", &["Ada", "IBM"], iv(2012, 2014));
        src.insert_strs("E", &["Ada", "Google"], Interval::from(2014));
        src.insert_strs("E", &["Bob", "IBM"], iv(2013, 2018));
        src.insert_strs("S", &["Ada", "18k"], Interval::from(2013));
        src.insert_strs("S", &["Bob", "13k"], Interval::from(2015));
        let solution = ex.exchange(&src).unwrap();
        assert_eq!(solution.target.total_len(), 5);
        assert!(ex.verify_solution(&src, &solution.target).unwrap());
        let q = parse_query("Q(n, s) :- Emp(n, c, s)").unwrap().into();
        let ans = ex.certain_answers(&src, &q).unwrap();
        assert_eq!(ans.len(), 2);
        // Cross-check against the abstract route.
        let abs = ex.certain_answers_abstract(&src, &q).unwrap();
        assert_eq!(ans.epochs(), abs);
    }

    #[test]
    fn load_source_and_target_from_text() {
        let ex = engine();
        let src = ex
            .load_source(
                "E(Ada, IBM)    @ [2012, 2014)\n\
                 S(Ada, 18k)    @ [2013, inf)\n",
            )
            .unwrap();
        assert_eq!(src.total_len(), 2);
        // Nulls rejected in sources…
        assert!(ex.load_source("E(Ada, _c) @ [0, 1)").is_err());
        // …allowed (and shared by name) in targets.
        let tgt = ex
            .load_target(
                "Emp(Ada, IBM, _s) @ [2012, 2013)\n\
                 Emp(Ada, IBM, 18k) @ [2013, 2014)\n",
            )
            .unwrap();
        assert_eq!(tgt.nulls().len(), 1);
        // Unknown relation / wrong arity.
        assert!(ex.load_source("Nope(a) @ [0, 1)").is_err());
        assert!(ex.load_source("E(a) @ [0, 1)").is_err());
    }

    #[test]
    fn verify_loaded_target_as_solution() {
        let ex = engine();
        let src = ex
            .load_source("E(Ada, IBM) @ [2012, 2014)\nS(Ada, 18k) @ [2013, inf)")
            .unwrap();
        // A hand-written solution: unknown salary in 2012, known after.
        let good = ex
            .load_target(
                "Emp(Ada, IBM, _s) @ [2012, 2013)\n\
                 Emp(Ada, IBM, 18k) @ [2013, 2014)",
            )
            .unwrap();
        assert!(ex.verify_solution(&src, &good).unwrap());
        // Missing the 2013 fact: not a solution.
        let bad = ex.load_target("Emp(Ada, IBM, _s) @ [2012, 2013)").unwrap();
        assert!(!ex.verify_solution(&src, &bad).unwrap());
    }

    #[test]
    fn options_builder() {
        let ex = engine().with_options(ChaseOptions::paper_faithful());
        assert!(!ex.options().renormalize_between_egd_rounds);
        assert_eq!(ex.source_schema().len(), 2);
        assert_eq!(ex.target_schema().len(), 1);
    }
}
