//! Quickstart: the paper's running example, end to end.
//!
//! Reproduces Sections 1–5 of *Temporal Data Exchange* on the employment
//! database of Figures 1–9: build the concrete source, run the c-chase,
//! inspect the solution and its abstract semantics, and answer a query with
//! certain-answer guarantees.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use tdx::core::verify::is_solution_concrete;
use tdx::{parse_mapping, parse_query, semantics, ChaseOptions, DataExchange, Interval};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The schema mapping of Examples 1 and 6: two source relations feed one
    // target relation; a functional dependency says a person has one salary
    // per company at any time point.
    let engine = DataExchange::new(parse_mapping(
        "source { E(name, company)  S(name, salary) }
         target { Emp(name, company, salary) }
         tgd st1: E(n,c) -> exists s . Emp(n,c,s)
         tgd st2: E(n,c) & S(n,s) -> Emp(n,c,s)
         egd fd:  Emp(n,c,s) & Emp(n,c,s2) -> s = s2",
    )?)
    .with_options(ChaseOptions {
        record_trace: true,
        ..ChaseOptions::default()
    });

    // Figure 4: the concrete source instance.
    let mut source = engine.new_source();
    source.insert_strs("E", &["Ada", "IBM"], Interval::new(2012, 2014));
    source.insert_strs("E", &["Ada", "Google"], Interval::from(2014));
    source.insert_strs("E", &["Bob", "IBM"], Interval::new(2013, 2018));
    source.insert_strs("S", &["Ada", "18k"], Interval::from(2013));
    source.insert_strs("S", &["Bob", "13k"], Interval::from(2015));
    println!("== concrete source (Figure 4) ==\n{source}");

    // Its abstract semantics — the snapshot sequence of Figure 1.
    println!("== abstract view (Figure 1) ==");
    print!("{}", semantics(&source).render_window(2012..=2018));

    // The c-chase (Section 4.3) materializes a concrete solution.
    let result = engine.exchange(&source)?;
    println!("\n== chase trace ==");
    for line in &result.trace {
        println!("  {line}");
    }
    println!("\n== concrete solution (Figure 9) ==\n{}", result.target);
    println!(
        "interval-annotated nulls: {} (e.g. Ada's pre-2013 salary is unknown *per snapshot*)",
        result.target.nulls().len()
    );

    // It really is a solution, with the right semantics.
    assert!(is_solution_concrete(
        &source,
        &result.target,
        engine.mapping()
    )?);

    // Certain answers (Section 5): true in *every* possible solution.
    let q = parse_query("Q(n, s) :- Emp(n, c, s)")?.into();
    let answers = engine.certain_answers(&source, &q)?;
    println!("== certain salaries over time ==\n{answers}");
    assert!(
        answers.at(2012).is_empty(),
        "Ada's 2012 salary is not certain"
    );
    assert_eq!(answers.at(2016).len(), 2, "both salaries certain in 2016");

    println!("done — every assertion from the paper checks out.");
    Ok(())
}
