//! The lint's own acceptance suite: each fixture seeds one rule's
//! violations and the scanner must report exactly those findings — same
//! rule, same file, same line — while the clean fixture and the real
//! workspace stay at zero.

use tdx_lint::{check_protocol, scan_source, scan_source_with, ProtocolSources, Rule};

fn fixture(name: &str) -> String {
    let path = format!(
        "{}/tests/fixtures/{name}",
        env!("CARGO_MANIFEST_DIR").replace('\\', "/")
    );
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("fixture {path}: {e}"))
}

/// `(rule, line)` pairs of a scan, sorted for order-free comparison.
fn spans(findings: &[tdx_lint::Finding]) -> Vec<(Rule, usize)> {
    let mut out: Vec<(Rule, usize)> = findings.iter().map(|f| (f.rule, f.line)).collect();
    out.sort_by_key(|&(r, l)| (r.id(), l));
    out
}

#[test]
fn wall_clock_fixture_reports_each_read_outside_tests() {
    let src = fixture("wall_clock.rs");
    let findings = scan_source("fixtures/wall_clock.rs", &src);
    assert_eq!(
        spans(&findings),
        vec![
            (Rule::WallClock, 3),
            (Rule::WallClock, 6),
            (Rule::WallClock, 7),
            (Rule::WallClock, 8),
        ],
        "{findings:#?}"
    );
    for f in &findings {
        assert_eq!(f.path, "fixtures/wall_clock.rs");
    }
}

#[test]
fn rng_fixture_reports_each_unseeded_source_and_ignores_masked_text() {
    let src = fixture("rng.rs");
    let findings = scan_source("fixtures/rng.rs", &src);
    assert_eq!(
        spans(&findings),
        vec![(Rule::Rng, 4), (Rule::Rng, 5)],
        "{findings:#?}"
    );
}

#[test]
fn hash_order_fixture_fires_at_import_granularity_only() {
    let src = fixture("hash_order.rs");
    let findings = scan_source("fixtures/hash_order.rs", &src);
    assert_eq!(
        spans(&findings),
        vec![(Rule::HashOrder, 3), (Rule::HashOrder, 4)],
        "{findings:#?}"
    );
}

#[test]
fn panic_fixture_fires_only_when_scanned_as_a_fault_path() {
    let src = fixture("panic_path.rs");
    let on_fault_path = scan_source_with("fixtures/panic_path.rs", &src, true);
    assert_eq!(
        spans(&on_fault_path),
        vec![
            (Rule::Index, 4),
            (Rule::Panic, 4),
            (Rule::Panic, 6),
            (Rule::Panic, 12),
        ],
        "{on_fault_path:#?}"
    );
    let off_fault_path = scan_source_with("fixtures/panic_path.rs", &src, false);
    assert!(
        off_fault_path.is_empty(),
        "panic/index must not arm off the fault paths: {off_fault_path:#?}"
    );
}

#[test]
fn index_fixture_flags_arithmetic_ranges_and_spares_checked_access() {
    let src = fixture("indexing.rs");
    let findings = scan_source_with("fixtures/indexing.rs", &src, true);
    assert_eq!(
        spans(&findings),
        vec![(Rule::Index, 4), (Rule::Index, 5)],
        "{findings:#?}"
    );
}

#[test]
fn each_allow_annotation_suppresses_exactly_one_finding() {
    let src = fixture("allow_annotations.rs");
    let findings = scan_source("fixtures/allow_annotations.rs", &src);
    // Lines 7 and 8 are suppressed (line-above and same-line allows);
    // line 9 still fires because each allow spends itself once. The
    // unused allow on line 13 and the malformed one on line 17 are
    // annotation findings; the site under the malformed allow still
    // fires.
    assert_eq!(
        spans(&findings),
        vec![
            (Rule::Annotation, 13),
            (Rule::Annotation, 17),
            (Rule::WallClock, 9),
            (Rule::WallClock, 18),
        ],
        "{findings:#?}"
    );
}

#[test]
fn clean_fixture_is_clean_even_as_a_fault_path() {
    let src = fixture("clean.rs");
    let findings = scan_source_with("fixtures/clean.rs", &src, true);
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn protocol_check_demands_every_arm_and_matrix_entry() {
    // A two-variant toy protocol: `Ping` is fully covered; `Probe` is
    // missing its decode arm, its server handler and its matrix entry.
    let protocol = "\
pub enum Message {
    Ping,
    Probe,
}
pub enum Response {
    Pong,
}
impl Wire for Message {
    fn encode(&self) {
        match self {
            Message::Ping => {}
            Message::Probe => {}
        }
    }
    fn decode() {
        // Message::Ping only — Probe is unreachable off the wire.
        let _ = Message::Ping;
    }
}
impl Wire for Response {
    fn encode(&self) {
        match self {
            Response::Pong => {}
        }
    }
    fn decode() {
        let _ = Response::Pong;
    }
}
";
    let server = "\
fn handle(m: Message) -> Response {
    match m {
        Message::Ping => Response::Pong,
        _ => unreachable!(),
    }
}
";
    let matrix = "\
const MATRIX: &[&str] = &[\"Message::Ping\", \"Response::Pong\"];
";
    let findings = check_protocol(&ProtocolSources {
        protocol_path: "protocol.rs",
        protocol,
        server_path: "server.rs",
        server,
        matrix_path: "matrix.rs",
        matrix,
    });
    assert!(
        findings.iter().all(|f| f.rule == Rule::Protocol),
        "{findings:#?}"
    );
    let messages: Vec<&str> = findings.iter().map(|f| f.message.as_str()).collect();
    assert_eq!(
        findings.len(),
        3,
        "Probe must be missing decode, handler and matrix: {messages:#?}"
    );
    assert!(messages.iter().all(|m| m.contains("Message::Probe")));
    assert!(messages.iter().any(|m| m.contains("decode")));
    assert!(messages.iter().any(|m| m.contains("server.rs")));
    assert!(messages.iter().any(|m| m.contains("matrix")));
}

#[test]
fn the_workspace_itself_scans_clean() {
    // The tree this crate ships in must hold the bar the lint sets: the
    // same invocation CI runs returns zero findings.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    let findings = tdx_lint::scan_workspace(&root).expect("workspace scan");
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn cli_exits_nonzero_on_findings_and_zero_on_clean() {
    let fixtures = format!(
        "{}/tests/fixtures",
        env!("CARGO_MANIFEST_DIR").replace('\\', "/")
    );
    let bin = env!("CARGO_BIN_EXE_tdx-lint");
    let dirty = std::process::Command::new(bin)
        .arg(format!("{fixtures}/wall_clock.rs"))
        .output()
        .expect("run tdx-lint");
    assert_eq!(dirty.status.code(), Some(1), "{dirty:?}");
    let clean = std::process::Command::new(bin)
        .arg(format!("{fixtures}/clean.rs"))
        .output()
        .expect("run tdx-lint");
    assert_eq!(clean.status.code(), Some(0), "{clean:?}");
    let fault = std::process::Command::new(bin)
        .arg("--fault-path")
        .arg(format!("{fixtures}/panic_path.rs"))
        .output()
        .expect("run tdx-lint");
    assert_eq!(fault.status.code(), Some(1), "{fault:?}");
}
