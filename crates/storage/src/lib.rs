//! In-memory relational storage and the conjunctive-match engine.
//!
//! The chase and the normalization algorithms of *Temporal Data Exchange*
//! are defined in terms of **homomorphisms from conjunctions of atoms to
//! instances**. This crate supplies the machinery:
//!
//! * [`Value`] — constants and labeled nulls (naïve-table values); nulls in
//!   temporal facts are *interval-annotated* implicitly: the paper's
//!   invariant that a null's annotation equals its fact's time interval is
//!   baked in, so only the base [`NullId`] is stored;
//! * [`Instance`] — a relational snapshot (sets of tuples per relation);
//! * [`TemporalInstance`] — a concrete temporal instance (tuples time-stamped
//!   with [`Interval`](tdx_temporal::Interval)s over the implicit `R⁺`
//!   schema);
//! * [`FactStore`] — the indexed storage engine underneath: eager
//!   per-column value indexes, interval-endpoint indexes (exact and overlap
//!   probes), and a generation/delta log for semi-naive evaluation;
//! * [`codec`] — a plain byte codec (bincode-style) for the distributed
//!   chase's wire protocol: values, rows, intervals and facts serialize to
//!   transport-neutral frames (string constants travel as text, never as
//!   process-local intern ids);
//! * [`wal`] — a CRC-guarded write-ahead log and atomic snapshot store for
//!   durable incremental-exchange sessions (torn tails drop cleanly on
//!   replay; corrupt snapshots fail loudly);
//! * [`matcher`] — a backtracking conjunctive matcher with the three
//!   temporal modes the paper needs: ignore time, one shared interval
//!   variable `t` (the `φ⁺(x̄, t)` forms of Definition 16), or one interval
//!   variable per atom with a non-empty common intersection (the `N(Φ⁺)`
//!   forms of Algorithm 1).

#![warn(missing_docs)]

pub mod codec;
pub mod display;
pub mod fact_store;
pub mod fxhash;
pub mod instance;
pub mod matcher;
pub mod sharded;
pub mod snapshot;
pub mod temporal_instance;
pub mod value;
pub mod wal;

pub use codec::{ByteReader, ByteWriter, CodecError, Wire};
pub use fact_store::{FactStore, Generation};
pub use instance::Instance;
pub use matcher::{Match, MatchError, SearchOptions, TemporalMode};
pub use sharded::{PartScope, PartView, ShardedFactStore};
pub use snapshot::StoreSnapshot;
pub use temporal_instance::{TemporalFact, TemporalInstance};
pub use value::{row, NullGen, NullId, Row, Value};
