//! Benchmarks for Section 5: naïve evaluation of `q⁺` on concrete solutions
//! and the two certain-answer routes (experiment `QA`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use tdx_core::{
    c_chase, certain_answers_abstract, certain_answers_concrete, naive_eval_concrete, ChaseOptions,
};
use tdx_logic::{parse_query, UnionQuery};
use tdx_workload::{EmploymentConfig, EmploymentWorkload};

fn bench_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("query");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for persons in [10usize, 25, 50] {
        let w = EmploymentWorkload::generate(&EmploymentConfig {
            persons,
            horizon: 30,
            seed: 42,
            ..EmploymentConfig::default()
        });
        let solution = c_chase(&w.source, &w.mapping).unwrap().target;
        let q_simple: UnionQuery = parse_query("Q(n, s) :- Emp(n, c, s)").unwrap().into();
        let q_join: UnionQuery = parse_query("Q(n, m) :- Emp(n, c, s) & Emp(m, c, s2)")
            .unwrap()
            .into();
        group.bench_with_input(
            BenchmarkId::new("naive_eval/simple", persons),
            &persons,
            |b, _| b.iter(|| naive_eval_concrete(&solution, &q_simple).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("naive_eval/self_join", persons),
            &persons,
            |b, _| b.iter(|| naive_eval_concrete(&solution, &q_join).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("certain/concrete_route", persons),
            &persons,
            |b, _| {
                b.iter(|| {
                    certain_answers_concrete(
                        &w.source,
                        &w.mapping,
                        &q_simple,
                        &ChaseOptions::default(),
                    )
                    .unwrap()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("certain/abstract_route", persons),
            &persons,
            |b, _| b.iter(|| certain_answers_abstract(&w.source, &w.mapping, &q_simple).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_queries);
criterion_main!(benches);
