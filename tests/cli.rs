//! Integration tests for the `tdx` command-line front end, run against the
//! shipped paper files.

use std::process::Command;

fn tdx() -> Command {
    Command::new(env!("CARGO_BIN_EXE_tdx"))
}

fn paper_args(cmd: &str) -> Vec<String> {
    vec![
        cmd.into(),
        "--mapping".into(),
        "examples/data/paper.map".into(),
        "--data".into(),
        "examples/data/figure4.facts".into(),
    ]
}

#[test]
fn exchange_reproduces_figure9() {
    let out = tdx().args(paper_args("exchange")).output().unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains("Ada  | IBM     | 18k    | [2013, 2014)"),
        "{stdout}"
    );
    assert!(
        stdout.contains("Bob  | IBM     | 13k    | [2015, 2018)"),
        "{stdout}"
    );
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("5 target facts"), "{stderr}");
}

#[test]
fn exchange_trace_and_coalesce_flags() {
    let mut args = paper_args("exchange");
    args.push("--trace".into());
    args.push("--coalesce".into());
    let out = tdx().args(&args).output().unwrap();
    assert!(out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("tgd step"), "{stderr}");
}

#[test]
fn normalize_prints_figure5_sizes() {
    let out = tdx().args(paper_args("normalize")).output().unwrap();
    assert!(out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("5 facts → 9 facts"), "{stderr}");
    // Naïve variant gives Figure 6's 14 facts.
    let mut args = paper_args("normalize");
    args.push("--naive".into());
    let out = tdx().args(&args).output().unwrap();
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("5 facts → 14 facts"), "{stderr}");
}

#[test]
fn query_prints_certain_answers() {
    let mut args = paper_args("query");
    args.push("--query".into());
    args.push("Q(n, s) :- Emp(n, c, s)".into());
    let out = tdx().args(&args).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("(Ada, 18k) @ {[2013, ∞)}"), "{stdout}");
    assert!(stdout.contains("(Bob, 13k) @ {[2015, 2018)}"), "{stdout}");
}

#[test]
fn snapshots_render_abstract_views() {
    let mut args = paper_args("snapshots");
    args.extend(["--from".into(), "2013".into(), "--to".into(), "2013".into()]);
    let out = tdx().args(&args).output().unwrap();
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains("{E(Ada, IBM), E(Bob, IBM), S(Ada, 18k)}"),
        "{stdout}"
    );
}

#[test]
fn check_accepts_figure9_and_rejects_truncations() {
    let mut args = paper_args("check");
    args.push("--solution".into());
    args.push("examples/data/figure9.facts".into());
    let out = tdx().args(&args).output().unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("OK"), "{stdout}");
    // A truncated candidate is rejected.
    let dir = std::env::temp_dir().join("tdx-cli-check");
    std::fs::create_dir_all(&dir).unwrap();
    let partial = dir.join("partial.facts");
    std::fs::write(&partial, "Emp(Ada, IBM, 18k) @ [2013, 2014)").unwrap();
    let mut args = paper_args("check");
    args.push("--solution".into());
    args.push(partial.to_str().unwrap().into());
    let out = tdx().args(&args).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("NOT A SOLUTION"), "{stdout}");
}

#[test]
fn exchange_engines_agree_from_the_cli() {
    // Every engine solves the paper example with the same five-fact
    // summary; the distributed engine's rendering is additionally
    // byte-identical across server counts.
    let mut distributed_outputs = Vec::new();
    for engine in [
        "scan",
        "partitioned:2",
        "distributed", // servers via TDX_CHASE_SERVERS / default
        "distributed:1",
        "distributed:3",
    ] {
        let mut args = paper_args("exchange");
        args.push("--engine".into());
        args.push(engine.into());
        let out = tdx().args(&args).output().unwrap();
        assert!(out.status.success(), "engine {engine}: {out:?}");
        let stderr = String::from_utf8(out.stderr).unwrap();
        assert!(
            stderr.contains("5 target facts"),
            "engine {engine}: {stderr}"
        );
        if engine.starts_with("distributed") {
            distributed_outputs.push(String::from_utf8(out.stdout).unwrap());
        }
    }
    for o in &distributed_outputs[1..] {
        assert_eq!(*o, distributed_outputs[0], "server counts must agree");
    }
    // --servers overrides the :N suffix.
    let mut args = paper_args("exchange");
    args.extend(["--engine".into(), "distributed".into()]);
    args.extend(["--servers".into(), "2".into()]);
    let out = tdx().args(&args).output().unwrap();
    assert!(out.status.success(), "{out:?}");
    // Garbage engine and server counts are rejected.
    let mut args = paper_args("exchange");
    args.extend(["--engine".into(), "distributed:x".into()]);
    let out = tdx().args(&args).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("bad server count"), "{stderr}");
    // --servers without a distributed engine is an error, not a silent
    // no-op.
    for extra in [vec![], vec!["--engine", "partitioned"]] {
        let mut args = paper_args("exchange");
        args.extend(extra.into_iter().map(String::from));
        args.extend(["--servers".into(), "3".into()]);
        let out = tdx().args(&args).output().unwrap();
        assert_eq!(out.status.code(), Some(1), "{out:?}");
        let stderr = String::from_utf8(out.stderr).unwrap();
        assert!(stderr.contains("requires --engine distributed"), "{stderr}");
    }
}

#[test]
fn transport_flag_selects_a_byte_identical_carrier() {
    // The same distributed exchange over channels and over TCP child
    // processes (this binary hosts the servers via its hidden
    // serve-partition subcommand) renders byte-identically.
    let mut outputs = Vec::new();
    for transport in ["channel", "tcp"] {
        let mut args = paper_args("exchange");
        args.extend(["--engine".into(), "distributed:2".into()]);
        args.extend(["--transport".into(), transport.into()]);
        let out = tdx().args(&args).output().unwrap();
        assert!(out.status.success(), "transport {transport}: {out:?}");
        outputs.push(String::from_utf8(out.stdout).unwrap());
    }
    assert_eq!(outputs[0], outputs[1], "transports must agree");
    // Unknown transports are rejected.
    let mut args = paper_args("exchange");
    args.extend(["--engine".into(), "distributed".into()]);
    args.extend(["--transport".into(), "pigeon".into()]);
    let out = tdx().args(&args).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("unknown transport"), "{stderr}");
    // ... and the flag without a distributed engine is an error.
    let mut args = paper_args("exchange");
    args.extend(["--transport".into(), "tcp".into()]);
    let out = tdx().args(&args).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("requires --engine distributed"), "{stderr}");
    // serve-partition without a rendezvous address is a usage error.
    let out = tdx().arg("serve-partition").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("--connect"), "{stderr}");
}

#[test]
fn incremental_without_batches_is_a_usage_error() {
    // `tdx incremental` with zero --batch flags used to print a zero-batch
    // summary and exit 0 — scripts that forgot the flag saw success.
    let out = tdx().args(paper_args("incremental")).output().unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("no --batch files given"), "{stderr}");
    // With a batch it still works (and verifies).
    let dir = std::env::temp_dir().join("tdx-cli-incremental");
    std::fs::create_dir_all(&dir).unwrap();
    let batch = dir.join("batch1.facts");
    std::fs::write(&batch, "E(Cyd, IBM) @ [2013, 2016)\n").unwrap();
    let mut args = paper_args("incremental");
    args.extend(["--batch".into(), batch.to_str().unwrap().into()]);
    args.push("--verify".into());
    let out = tdx().args(&args).output().unwrap();
    assert!(out.status.success(), "{out:?}");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("verified hom-equivalent"), "{stderr}");
}

#[test]
fn missing_args_exit_with_usage() {
    let out = tdx().arg("exchange").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let out = tdx().output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let out = tdx().args(paper_args("bogus-subcommand")).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn bad_data_reports_error() {
    let dir = std::env::temp_dir().join("tdx-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("bad.facts");
    std::fs::write(&bad, "Nope(x) @ [0, 5)").unwrap();
    let out = tdx()
        .args([
            "exchange",
            "--mapping",
            "examples/data/paper.map",
            "--data",
            bad.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("not in the source schema"), "{stderr}");
}
