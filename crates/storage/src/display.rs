//! Paper-style table rendering for instances.
//!
//! The experiment harness reproduces the paper's figures as text tables; the
//! formatting lives here so `Display` for [`TemporalInstance`] and the bench
//! crate agree on the layout.

use crate::temporal_instance::TemporalInstance;
use std::fmt;
use tdx_logic::RelId;

/// Renders an aligned text table.
///
/// ```text
/// E+
///  Name | Company | Time
///  Ada  | IBM     | [2012, 2014)
/// ```
pub fn render_table(title: &str, headers: &[String], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.chars().count()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.chars().count());
        }
    }
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let push_row = |cells: &[String], out: &mut String| {
        out.push(' ');
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                out.push_str(" | ");
            }
            out.push_str(cell);
            if i + 1 < cols {
                for _ in cell.chars().count()..widths[i] {
                    out.push(' ');
                }
            }
        }
        out.push('\n');
    };
    push_row(headers, &mut out);
    for row in rows {
        push_row(row, &mut out);
    }
    out
}

/// Renders one relation of a temporal instance as a paper-style table, rows
/// sorted for reproducibility (by interval start, then textual data).
pub fn render_temporal_relation(instance: &TemporalInstance, rel: RelId) -> String {
    let rs = instance.schema().relation(rel);
    let title = format!("{}+", rs.name());
    let mut headers: Vec<String> = rs.attrs().iter().map(|a| cap(a.as_str())).collect();
    headers.push("Time".to_owned());
    let mut rows: Vec<(tdx_temporal::Interval, Vec<String>)> = instance
        .facts(rel)
        .iter()
        .map(|f| {
            let mut cells: Vec<String> = f.data.iter().map(|v| v.to_string()).collect();
            cells.push(f.interval.to_string());
            (f.interval, cells)
        })
        .collect();
    rows.sort_by(|a, b| {
        let ka = (&a.1[..a.1.len() - 1], a.0);
        let kb = (&b.1[..b.1.len() - 1], b.0);
        ka.cmp(&kb)
    });
    let cells: Vec<Vec<String>> = rows.into_iter().map(|(_, r)| r).collect();
    render_table(&title, &headers, &cells)
}

fn cap(s: &str) -> String {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) => c.to_uppercase().collect::<String>() + chars.as_str(),
        None => String::new(),
    }
}

pub(crate) fn fmt_temporal_instance(
    instance: &TemporalInstance,
    f: &mut fmt::Formatter<'_>,
) -> fmt::Result {
    for i in 0..instance.schema().len() {
        let rel = RelId(i as u32);
        if instance.len(rel) == 0 {
            continue;
        }
        if i > 0 {
            writeln!(f)?;
        }
        write!(f, "{}", render_temporal_relation(instance, rel))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tdx_logic::{RelationSchema, Schema};
    use tdx_temporal::Interval;

    #[test]
    fn renders_aligned_table() {
        let t = render_table(
            "E+",
            &["Name".into(), "Company".into(), "Time".into()],
            &[
                vec!["Ada".into(), "IBM".into(), "[2012, 2014)".into()],
                vec!["Ada".into(), "Google".into(), "[2014, ∞)".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines[0], "E+");
        assert_eq!(lines[1], " Name | Company | Time");
        assert_eq!(lines[2], " Ada  | IBM     | [2012, 2014)");
        assert_eq!(lines[3], " Ada  | Google  | [2014, ∞)");
    }

    #[test]
    fn renders_temporal_relation_sorted() {
        let schema =
            Arc::new(Schema::new(vec![RelationSchema::new("E", &["name", "company"])]).unwrap());
        let mut i = TemporalInstance::new(schema);
        i.insert_strs("E", &["Bob", "IBM"], Interval::new(2013, 2018));
        i.insert_strs("E", &["Ada", "IBM"], Interval::new(2012, 2014));
        let out = render_temporal_relation(&i, RelId(0));
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "E+");
        assert!(lines[1].starts_with(" Name | Company"));
        assert!(lines[2].contains("Ada"));
        assert!(lines[3].contains("Bob"));
    }
}
