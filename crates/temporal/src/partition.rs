//! Endpoint collection and interval fragmentation.
//!
//! Both normalization algorithms of the paper (Section 4.2) fragment concrete
//! facts at *distinct start and end points*: the naïve algorithm at every
//! endpoint of the instance, Algorithm 1 only at the endpoints of the facts
//! in the same merged group `Δ`. [`Breakpoints`] is that sorted endpoint
//! sequence (the paper's `TP_Δ`), and [`fragment_interval`] cuts one interval
//! at the breakpoints falling strictly inside it (the paper's `TP_f`).

use crate::interval::Interval;
use crate::point::{Endpoint, TimePoint};

/// A sorted, deduplicated sequence of time points used as cutting positions.
///
/// Corresponds to `TP_Δ = ⟨tp₁, …, tp_m⟩` in Algorithm 1: the distinct start
/// points and (finite) end points of a set of facts. `∞` never appears — an
/// unbounded fact simply keeps an unbounded last fragment.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Breakpoints {
    points: Vec<TimePoint>,
}

impl Breakpoints {
    /// An empty cutting set.
    pub fn new() -> Self {
        Breakpoints { points: Vec::new() }
    }

    /// Collects the endpoints of the given intervals.
    pub fn from_intervals<'a, I: IntoIterator<Item = &'a Interval>>(iter: I) -> Self {
        let mut points = Vec::new();
        for iv in iter {
            points.push(iv.start());
            if let Endpoint::Fin(e) = iv.end() {
                points.push(e);
            }
        }
        points.sort_unstable();
        points.dedup();
        Breakpoints { points }
    }

    /// Builds a cutting set from already-collected points (e.g. the
    /// incrementally maintained endpoint set of an
    /// [`IntervalIndex`](crate::index::IntervalIndex)). The input need not
    /// be sorted or deduplicated.
    pub fn from_points<I: IntoIterator<Item = TimePoint>>(iter: I) -> Self {
        let mut points: Vec<TimePoint> = iter.into_iter().collect();
        points.sort_unstable();
        points.dedup();
        Breakpoints { points }
    }

    /// Adds the endpoints of one more interval.
    pub fn add_interval(&mut self, iv: &Interval) {
        self.points.push(iv.start());
        if let Endpoint::Fin(e) = iv.end() {
            self.points.push(e);
        }
        self.points.sort_unstable();
        self.points.dedup();
    }

    /// The sorted cutting positions.
    pub fn points(&self) -> &[TimePoint] {
        &self.points
    }

    /// Number of distinct positions.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether no position has been collected.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The cutting positions strictly inside `iv` (excluding its own start;
    /// an endpoint equal to `iv.start()` or `≥ iv.end()` does not cut).
    pub fn interior_of<'a>(&'a self, iv: &Interval) -> impl Iterator<Item = TimePoint> + 'a {
        let lo = self.points.partition_point(|&p| p <= iv.start());
        let end = iv.end();
        self.points[lo..]
            .iter()
            .copied()
            .take_while(move |&p| Endpoint::Fin(p) < end)
    }

    /// Selects at most `parts − 1` evenly spaced cutting positions — the
    /// *coarse* breakpoints that split the timeline into roughly `parts`
    /// ranges with a similar number of distinct endpoints each. This is how
    /// the partitioned chase picks worker partitions: cutting at existing
    /// endpoints keeps every interval's fragments aligned with the ranges,
    /// and even endpoint counts stand in for even fact counts.
    pub fn coarsen(&self, parts: usize) -> Breakpoints {
        if parts <= 1 || self.points.len() <= 1 {
            return Breakpoints::new();
        }
        let cuts = (parts - 1).min(self.points.len() - 1);
        let mut points = Vec::with_capacity(cuts);
        // Skip index 0: a boundary at (or below) every interval's start
        // would create an empty leading range.
        for k in 1..=cuts {
            let idx = (k * self.points.len()) / (cuts + 1);
            points.push(self.points[idx.clamp(1, self.points.len() - 1)]);
        }
        points.dedup();
        Breakpoints { points }
    }
}

/// A partition of the timeline `[0, ∞)` into consecutive half-open ranges
/// cut at fixed boundary points: `[0, b₁), [b₁, b₂), …, [b_k, ∞)`.
///
/// This is the work-distribution structure of the partitioned chase: facts
/// whose intervals lie within one range can be matched, merged and
/// re-fragmented by that range's worker without coordination, while facts
/// crossing a boundary are the (small) reconciliation set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TimelinePartition {
    /// Strictly increasing, non-zero boundary points.
    boundaries: Vec<TimePoint>,
}

impl TimelinePartition {
    /// A partition cut at the given breakpoints (a point at 0 is dropped —
    /// the leading range always starts at 0).
    pub fn new(bps: &Breakpoints) -> TimelinePartition {
        TimelinePartition {
            boundaries: bps.points().iter().copied().filter(|&p| p > 0).collect(),
        }
    }

    /// The trivial partition: one range covering the whole timeline.
    pub fn whole() -> TimelinePartition {
        TimelinePartition {
            boundaries: Vec::new(),
        }
    }

    /// Number of ranges (`boundaries + 1`, always ≥ 1).
    pub fn len(&self) -> usize {
        self.boundaries.len() + 1
    }

    /// Whether this is the trivial single-range partition.
    pub fn is_empty(&self) -> bool {
        self.boundaries.is_empty()
    }

    /// The boundary points.
    pub fn boundaries(&self) -> &[TimePoint] {
        &self.boundaries
    }

    /// The ranges, in timeline order.
    pub fn ranges(&self) -> Vec<Interval> {
        let mut out = Vec::with_capacity(self.len());
        let mut cur = 0u64;
        for &b in &self.boundaries {
            out.push(Interval::new(cur, b));
            cur = b;
        }
        out.push(Interval::from(cur));
        out
    }

    /// Index of the range containing time point `t`.
    pub fn part_of(&self, t: TimePoint) -> usize {
        self.boundaries.partition_point(|&b| b <= t)
    }

    /// Indices `lo..=hi` of the ranges `iv` overlaps.
    pub fn parts_overlapping(&self, iv: &Interval) -> (usize, usize) {
        let lo = self.part_of(iv.start());
        let hi = match iv.end() {
            Endpoint::Fin(e) => self.part_of(e - 1),
            Endpoint::Inf => self.boundaries.len(),
        };
        (lo, hi)
    }

    /// Whether `iv` crosses a boundary (overlaps more than one range).
    pub fn crosses(&self, iv: &Interval) -> bool {
        let (lo, hi) = self.parts_overlapping(iv);
        lo != hi
    }

    /// The server owning range `part` when the partition's ranges are
    /// distributed over `servers` partition servers as contiguous,
    /// balanced blocks: server `s` owns the ranges `p` with
    /// `p * servers / len` equal to `s`, so block sizes differ by at most
    /// one and the assignment depends only on `(len, servers)` — never on
    /// which server happens to ask. Contiguity matters for the distributed
    /// chase: a boundary-crossing fact (an unbounded interval crosses
    /// every boundary after its start) is replicated exactly to the
    /// servers owning the ranges it overlaps, and a contiguous assignment
    /// makes that replica set a contiguous server range too.
    pub fn server_of(&self, part: usize, servers: usize) -> usize {
        assert!(part < self.len(), "partition index out of range");
        if servers <= 1 {
            return 0;
        }
        (part * servers.min(self.len())) / self.len()
    }

    /// The full partition → server map for `servers` servers (see
    /// [`TimelinePartition::server_of`]).
    pub fn server_assignment(&self, servers: usize) -> Vec<usize> {
        (0..self.len())
            .map(|p| self.server_of(p, servers))
            .collect()
    }

    /// The servers owning at least one range that `iv` overlaps — the
    /// replica set a boundary-crossing fact is shipped to. For an
    /// unbounded interval this extends to the last server with any owned
    /// range.
    pub fn servers_overlapping(&self, iv: &Interval, servers: usize) -> (usize, usize) {
        let (lo, hi) = self.parts_overlapping(iv);
        (self.server_of(lo, servers), self.server_of(hi, servers))
    }

    /// How unevenly `points` distribute over the ranges: the largest
    /// per-range point count divided by the ideal (total / ranges). `1.0`
    /// is perfectly balanced; values well above it mean the endpoint
    /// histogram has shifted since the partition was cut — the signal an
    /// incremental session uses to re-coarsen its timeline partition.
    pub fn imbalance(&self, points: &Breakpoints) -> f64 {
        if self.len() <= 1 || points.is_empty() {
            return 1.0;
        }
        let mut counts = vec![0usize; self.len()];
        for &p in points.points() {
            counts[self.part_of(p)] += 1;
        }
        let ideal = points.len() as f64 / self.len() as f64;
        counts.iter().copied().max().unwrap_or(0) as f64 / ideal.max(1.0)
    }
}

/// Fragments `iv` at every breakpoint strictly inside it.
///
/// This is the `frg` step of Algorithm 1: the fact's interval `[s, e)` is cut
/// into `k` consecutive sub-intervals whose endpoints are the sub-sequence of
/// `TP_Δ` between `s` and `e`. The fragments are returned in ascending order,
/// are pairwise adjacent, and their union is exactly `iv`. When no breakpoint
/// falls inside, the single original interval is returned.
pub fn fragment_interval(iv: &Interval, bps: &Breakpoints) -> Vec<Interval> {
    let mut out = Vec::new();
    let mut cur = iv.start();
    for p in bps.interior_of(iv) {
        // `interior_of` guarantees cur < p < iv.end().
        out.push(Interval::new(cur, p));
        cur = p;
    }
    match iv.end() {
        Endpoint::Fin(e) => out.push(Interval::new(cur, e)),
        Endpoint::Inf => out.push(Interval::from(cur)),
    }
    out
}

/// Partitions the whole timeline `[0, ∞)` into *elementary epochs* induced by
/// the breakpoints: `[0, p₁), [p₁, p₂), …, [p_k, ∞)`.
///
/// Every interval whose endpoints are all drawn from `bps ∪ {0, ∞}` is a
/// union of consecutive epochs; instances whose facts share those endpoints
/// are snapshot-uniform inside each epoch. This is how the crate above
/// finitely represents the paper's infinite abstract instances.
pub fn epochs_over_timeline(bps: &Breakpoints) -> Vec<Interval> {
    let mut out = Vec::new();
    let mut cur = 0u64;
    for &p in bps.points() {
        if p > cur {
            out.push(Interval::new(cur, p));
            cur = p;
        }
    }
    out.push(Interval::from(cur));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(s: u64, e: u64) -> Interval {
        Interval::new(s, e)
    }

    #[test]
    fn imbalance_detects_a_shifted_histogram() {
        let tp = TimelinePartition::new(&Breakpoints::from_points([10, 20, 30]));
        // Evenly spread endpoints: perfectly balanced.
        let even = Breakpoints::from_points([5, 15, 25, 35]);
        assert!((tp.imbalance(&even) - 1.0).abs() < 1e-9);
        // Everything piled into the last range: maximally skewed.
        let skewed = Breakpoints::from_points([31, 32, 33, 34, 35, 36, 37, 38]);
        assert!(tp.imbalance(&skewed) > 3.0);
        // Degenerate cases report balance.
        assert!((TimelinePartition::whole().imbalance(&even) - 1.0).abs() < 1e-9);
        assert!((tp.imbalance(&Breakpoints::new()) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn collects_sorted_distinct_endpoints() {
        // Facts of the paper's Example 14, group Δ1 = {f1, f2, f3}.
        let f1 = iv(5, 11);
        let f2 = iv(8, 15);
        let f3 = iv(7, 10);
        let bps = Breakpoints::from_intervals([&f1, &f2, &f3]);
        assert_eq!(bps.points(), &[5, 7, 8, 10, 11, 15]);
    }

    #[test]
    fn infinite_ends_are_not_breakpoints() {
        let f4 = iv(20, 25);
        let f5 = Interval::from(18);
        let bps = Breakpoints::from_intervals([&f4, &f5]);
        assert_eq!(bps.points(), &[18, 20, 25]);
    }

    #[test]
    fn fragment_matches_example_14() {
        // f1 : R+(a, [5,11)) fragments to [5,7), [7,8), [8,10), [10,11).
        let bps = Breakpoints::from_intervals([&iv(5, 11), &iv(8, 15), &iv(7, 10)]);
        let frags = fragment_interval(&iv(5, 11), &bps);
        assert_eq!(frags, vec![iv(5, 7), iv(7, 8), iv(8, 10), iv(10, 11)]);
        // f5 : S+(b, [18,∞)) fragments to [18,20), [20,25), [25,∞).
        let bps = Breakpoints::from_intervals([&iv(20, 25), &Interval::from(18)]);
        let frags = fragment_interval(&Interval::from(18), &bps);
        assert_eq!(frags, vec![iv(18, 20), iv(20, 25), Interval::from(25)]);
    }

    #[test]
    fn fragment_without_interior_breakpoints_is_identity() {
        let bps = Breakpoints::from_intervals([&iv(0, 2), &iv(20, 30)]);
        assert_eq!(fragment_interval(&iv(5, 10), &bps), vec![iv(5, 10)]);
        // Breakpoints equal to the interval's own endpoints do not cut.
        let bps = Breakpoints::from_intervals([&iv(5, 10)]);
        assert_eq!(fragment_interval(&iv(5, 10), &bps), vec![iv(5, 10)]);
    }

    #[test]
    fn fragments_tile_the_original() {
        let bps = Breakpoints::from_intervals([&iv(1, 4), &iv(3, 9), &iv(6, 7)]);
        for target in [iv(0, 12), iv(2, 8), iv(3, 4)] {
            let frags = fragment_interval(&target, &bps);
            assert_eq!(frags.first().unwrap().start(), target.start());
            assert_eq!(frags.last().unwrap().end(), target.end());
            for w in frags.windows(2) {
                assert_eq!(Endpoint::Fin(w[1].start()), w[0].end());
            }
        }
    }

    #[test]
    fn interior_of_respects_bounds() {
        let bps = Breakpoints::from_intervals([&iv(0, 5), &iv(5, 10), &iv(10, 15)]);
        // points: 0,5,10,15
        let inside: Vec<_> = bps.interior_of(&iv(5, 15)).collect();
        assert_eq!(inside, vec![10]);
        let inside: Vec<_> = bps.interior_of(&Interval::from(0)).collect();
        assert_eq!(inside, vec![5, 10, 15]);
    }

    #[test]
    fn epochs_partition_timeline() {
        let bps = Breakpoints::from_intervals([&iv(2012, 2014), &Interval::from(2013)]);
        // points: 2012, 2013, 2014
        let epochs = epochs_over_timeline(&bps);
        assert_eq!(
            epochs,
            vec![
                iv(0, 2012),
                iv(2012, 2013),
                iv(2013, 2014),
                Interval::from(2014)
            ]
        );
        // Breakpoint at 0 does not create an empty leading epoch.
        let bps = Breakpoints::from_intervals([&iv(0, 3)]);
        assert_eq!(
            epochs_over_timeline(&bps),
            vec![iv(0, 3), Interval::from(3)]
        );
        assert_eq!(
            epochs_over_timeline(&Breakpoints::new()),
            vec![Interval::all()]
        );
    }

    #[test]
    fn coarsen_picks_even_cuts() {
        let bps = Breakpoints::from_points(0..=100);
        let coarse = Breakpoints::coarsen(&bps, 4);
        assert_eq!(coarse.points(), &[25, 50, 75]);
        // Fewer distinct points than requested parts: every interior point.
        let bps = Breakpoints::from_points([3, 9]);
        assert_eq!(Breakpoints::coarsen(&bps, 8).points(), &[9]);
        // Degenerate cases.
        assert!(Breakpoints::coarsen(&bps, 1).is_empty());
        assert!(Breakpoints::coarsen(&Breakpoints::new(), 4).is_empty());
        assert!(Breakpoints::coarsen(&Breakpoints::from_points([7]), 4).is_empty());
    }

    #[test]
    fn timeline_partition_lookup() {
        let tp = TimelinePartition::new(&Breakpoints::from_points([10, 20]));
        assert_eq!(tp.len(), 3);
        assert_eq!(tp.ranges(), vec![iv(0, 10), iv(10, 20), Interval::from(20)]);
        assert_eq!(tp.part_of(0), 0);
        assert_eq!(tp.part_of(9), 0);
        assert_eq!(tp.part_of(10), 1);
        assert_eq!(tp.part_of(19), 1);
        assert_eq!(tp.part_of(20), 2);
        assert_eq!(tp.part_of(1000), 2);
        // Range membership by overlap.
        assert_eq!(tp.parts_overlapping(&iv(2, 5)), (0, 0));
        assert_eq!(tp.parts_overlapping(&iv(5, 15)), (0, 1));
        assert_eq!(tp.parts_overlapping(&iv(10, 20)), (1, 1));
        assert_eq!(tp.parts_overlapping(&Interval::from(3)), (0, 2));
        assert!(!tp.crosses(&iv(10, 20)));
        assert!(tp.crosses(&iv(9, 11)));
        // A boundary at 0 is dropped.
        let tp = TimelinePartition::new(&Breakpoints::from_points([0, 4]));
        assert_eq!(tp.len(), 2);
        // The trivial partition.
        let tp = TimelinePartition::whole();
        assert!(tp.is_empty());
        assert_eq!(tp.ranges(), vec![Interval::all()]);
        assert_eq!(tp.parts_overlapping(&iv(3, 9)), (0, 0));
    }

    #[test]
    fn partition_ranges_tile_the_timeline() {
        let tp = TimelinePartition::new(&Breakpoints::from_points([7, 31, 64]));
        let ranges = tp.ranges();
        assert_eq!(ranges.first().unwrap().start(), 0);
        assert!(ranges.last().unwrap().is_unbounded());
        for w in ranges.windows(2) {
            assert_eq!(Endpoint::Fin(w[1].start()), w[0].end());
        }
        for t in [0u64, 6, 7, 30, 31, 63, 64, 1000] {
            let p = tp.part_of(t);
            assert!(ranges[p].contains(t), "point {t} in range {p}");
        }
    }

    #[test]
    fn server_assignment_is_contiguous_and_balanced() {
        for (parts, servers) in [(1usize, 1usize), (4, 2), (5, 3), (7, 3), (3, 8), (16, 4)] {
            let bps = Breakpoints::from_points((1..parts as u64).map(|k| 10 * k));
            let tp = TimelinePartition::new(&bps);
            assert_eq!(tp.len(), parts);
            let assign = tp.server_assignment(servers);
            assert_eq!(assign.len(), parts);
            // Monotone (contiguous blocks), starting at server 0.
            assert_eq!(assign[0], 0);
            for w in assign.windows(2) {
                assert!(w[1] == w[0] || w[1] == w[0] + 1, "{assign:?}");
            }
            // Every server in 0..min(servers, parts) owns something, and
            // block sizes differ by at most one.
            let used = servers.min(parts);
            let mut counts = vec![0usize; used];
            for &s in &assign {
                counts[s] += 1;
            }
            assert!(counts.iter().all(|&c| c > 0), "{assign:?}");
            let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
            assert!(max - min <= 1, "{assign:?}");
        }
    }

    #[test]
    fn unbounded_intervals_span_the_server_tail() {
        // An unbounded interval crosses every boundary after its start, so
        // its replica set must reach the last server.
        let tp = TimelinePartition::new(&Breakpoints::from_points([10, 20, 30]));
        let unbounded = Interval::from(15);
        assert!(unbounded.is_unbounded());
        assert!(tp.crosses(&unbounded));
        assert_eq!(tp.parts_overlapping(&unbounded), (1, 3));
        for servers in [1usize, 2, 3, 4] {
            let (lo, hi) = tp.servers_overlapping(&unbounded, servers);
            assert_eq!(hi, tp.server_of(tp.len() - 1, servers), "servers={servers}");
            assert!(lo <= hi);
        }
        // An unbounded interval starting at 0 reaches every server.
        let whole = Interval::from(0);
        let (lo, hi) = tp.servers_overlapping(&whole, 3);
        assert_eq!((lo, hi), (0, tp.server_of(tp.len() - 1, 3)));
        assert_eq!(lo, 0);
    }

    #[test]
    fn add_interval_incremental() {
        let mut bps = Breakpoints::new();
        bps.add_interval(&iv(3, 7));
        bps.add_interval(&Interval::from(5));
        assert_eq!(bps.points(), &[3, 5, 7]);
        assert_eq!(bps.len(), 3);
        assert!(!bps.is_empty());
    }
}
