//! Half-open time intervals `[s, e)` — the values of the temporal attribute
//! in the concrete view (paper Section 2).

use crate::point::{Endpoint, TimePoint};
use std::fmt;

/// A non-empty half-open interval `[start, end)` over the discrete time
/// domain. `end` may be `∞`. Emptiness is ruled out at construction:
/// [`Interval::new`] panics on `end <= start` and [`Interval::try_new`]
/// returns `None` instead.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Interval {
    start: TimePoint,
    end: Endpoint,
}

/// The thirteen Allen relations between two intervals, restricted to the
/// discrete half-open encoding. The paper only needs overlap/adjacency and
/// equality, but downstream diagnostics use the full classification.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum AllenRelation {
    /// `self` ends strictly before `other` starts (a gap in between).
    Before,
    /// `self` ends exactly where `other` starts.
    Meets,
    /// `self` starts first and they overlap without containment.
    Overlaps,
    /// Same start, `self` ends first.
    Starts,
    /// `self` lies strictly inside `other`.
    During,
    /// Same end, `self` starts later.
    Finishes,
    /// The two intervals are identical.
    Equals,
    /// Same end, `self` starts first.
    FinishedBy,
    /// `other` lies strictly inside `self`.
    Contains,
    /// Same start, `self` ends later.
    StartedBy,
    /// `other` starts first and they overlap without containment.
    OverlappedBy,
    /// `other` ends exactly where `self` starts.
    MetBy,
    /// `self` starts strictly after `other` ends (a gap in between).
    After,
}

impl Interval {
    /// Builds `[start, end)`. Panics if the interval would be empty.
    #[inline]
    pub fn new(start: TimePoint, end: impl Into<Endpoint>) -> Self {
        Self::try_new(start, end).expect("empty interval: end must be strictly above start")
    }

    /// Builds `[start, end)`, returning `None` if it would be empty.
    #[inline]
    pub fn try_new(start: TimePoint, end: impl Into<Endpoint>) -> Option<Self> {
        let end = end.into();
        match end {
            Endpoint::Fin(e) if e <= start => None,
            _ => Some(Interval { start, end }),
        }
    }

    /// Builds the unbounded interval `[start, ∞)`.
    #[inline]
    pub fn from(start: TimePoint) -> Self {
        Interval {
            start,
            end: Endpoint::Inf,
        }
    }

    /// Builds the singleton interval `[t, t+1)` holding exactly time point `t`.
    #[inline]
    pub fn point(t: TimePoint) -> Self {
        Interval {
            start: t,
            end: Endpoint::Fin(t + 1),
        }
    }

    /// The whole timeline `[0, ∞)`.
    #[inline]
    pub fn all() -> Self {
        Interval {
            start: 0,
            end: Endpoint::Inf,
        }
    }

    /// Inclusive lower bound.
    #[inline]
    pub fn start(&self) -> TimePoint {
        self.start
    }

    /// Exclusive upper bound (possibly `∞`).
    #[inline]
    pub fn end(&self) -> Endpoint {
        self.end
    }

    /// Number of time points covered, or `None` when infinite. (There is
    /// deliberately no `is_empty`: intervals are non-empty by construction.)
    #[allow(clippy::len_without_is_empty)]
    #[inline]
    pub fn len(&self) -> Option<u64> {
        self.end.finite().map(|e| e - self.start)
    }

    /// Whether the interval covers exactly one time point.
    #[inline]
    pub fn is_point(&self) -> bool {
        self.len() == Some(1)
    }

    /// Whether the interval extends to `∞`.
    #[inline]
    pub fn is_unbounded(&self) -> bool {
        self.end.is_infinite()
    }

    /// Membership test: `t ∈ [start, end)`.
    #[inline]
    pub fn contains(&self, t: TimePoint) -> bool {
        t >= self.start && crate::point::below(t, self.end)
    }

    /// Whether `other` is fully inside `self`.
    #[inline]
    pub fn covers(&self, other: &Interval) -> bool {
        self.start <= other.start && other.end <= self.end
    }

    /// Whether the two intervals share at least one time point.
    #[inline]
    pub fn overlaps(&self, other: &Interval) -> bool {
        Endpoint::Fin(self.start) < other.end && Endpoint::Fin(other.start) < self.end
    }

    /// Adjacency in the paper's sense (Section 2): `[s,e)` and `[s',e')` are
    /// adjacent iff `s' = e` or `s = e'`. Two adjacent intervals with equal
    /// data can be coalesced.
    #[inline]
    pub fn adjacent(&self, other: &Interval) -> bool {
        Endpoint::Fin(other.start) == self.end || Endpoint::Fin(self.start) == other.end
    }

    /// Intersection, or `None` when disjoint.
    pub fn intersect(&self, other: &Interval) -> Option<Interval> {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        match end {
            Endpoint::Fin(e) if e <= start => None,
            _ => Some(Interval { start, end }),
        }
    }

    /// Union of two intervals that overlap or are adjacent (their hull);
    /// `None` if they are separated (the union would not be an interval).
    pub fn join(&self, other: &Interval) -> Option<Interval> {
        if self.overlaps(other) || self.adjacent(other) {
            Some(Interval {
                start: self.start.min(other.start),
                end: self.end.max(other.end),
            })
        } else {
            None
        }
    }

    /// Set difference `self \ other` as zero, one or two intervals.
    pub fn subtract(&self, other: &Interval) -> Vec<Interval> {
        let mut out = Vec::new();
        let Some(cut) = self.intersect(other) else {
            return vec![*self];
        };
        if self.start < cut.start {
            out.push(Interval {
                start: self.start,
                end: Endpoint::Fin(cut.start),
            });
        }
        if let Endpoint::Fin(ce) = cut.end {
            if Endpoint::Fin(ce) < self.end {
                out.push(Interval {
                    start: ce,
                    end: self.end,
                });
            }
        }
        out
    }

    /// Splits `[s, e)` at an interior point `p` (with `s < p < e`) into
    /// `[s, p)` and `[p, e)`. Returns `None` when `p` is not interior.
    pub fn split_at(&self, p: TimePoint) -> Option<(Interval, Interval)> {
        if p > self.start && crate::point::below(p, self.end) {
            Some((
                Interval {
                    start: self.start,
                    end: Endpoint::Fin(p),
                },
                Interval {
                    start: p,
                    end: self.end,
                },
            ))
        } else {
            None
        }
    }

    /// The Allen relation from `self` to `other`.
    pub fn allen(&self, other: &Interval) -> AllenRelation {
        use std::cmp::Ordering::*;
        let s = self.start.cmp(&other.start);
        let e = self.end.cmp(&other.end);
        if self.end <= Endpoint::Fin(other.start) {
            return if self.end == Endpoint::Fin(other.start) {
                AllenRelation::Meets
            } else {
                AllenRelation::Before
            };
        }
        if other.end <= Endpoint::Fin(self.start) {
            return if other.end == Endpoint::Fin(self.start) {
                AllenRelation::MetBy
            } else {
                AllenRelation::After
            };
        }
        match (s, e) {
            (Equal, Equal) => AllenRelation::Equals,
            (Equal, Less) => AllenRelation::Starts,
            (Equal, Greater) => AllenRelation::StartedBy,
            (Less, Equal) => AllenRelation::FinishedBy,
            (Greater, Equal) => AllenRelation::Finishes,
            (Less, Less) => AllenRelation::Overlaps,
            (Greater, Greater) => AllenRelation::OverlappedBy,
            (Less, Greater) => AllenRelation::Contains,
            (Greater, Less) => AllenRelation::During,
        }
    }

    /// Iterates the time points of the interval clipped to `[0, limit)`.
    /// Useful for materializing snapshots of abstract instances in tests.
    pub fn points_until(&self, limit: TimePoint) -> impl Iterator<Item = TimePoint> {
        let lo = self.start.min(limit);
        let hi = match self.end {
            Endpoint::Fin(e) => e.min(limit),
            Endpoint::Inf => limit,
        };
        lo..hi
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

impl fmt::Debug for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(s: u64, e: u64) -> Interval {
        Interval::new(s, e)
    }

    #[test]
    fn construction_rejects_empty() {
        assert!(Interval::try_new(5, 5).is_none());
        assert!(Interval::try_new(5, 4).is_none());
        assert!(Interval::try_new(5, 6).is_some());
        assert!(Interval::try_new(5, Endpoint::Inf).is_some());
    }

    #[test]
    #[should_panic]
    fn new_panics_on_empty() {
        let _ = Interval::new(3, 3);
    }

    #[test]
    fn accessors() {
        let i = iv(2012, 2014);
        assert_eq!(i.start(), 2012);
        assert_eq!(i.end(), Endpoint::Fin(2014));
        assert_eq!(i.len(), Some(2));
        assert!(!i.is_unbounded());
        assert!(Interval::from(8).is_unbounded());
        assert_eq!(Interval::from(8).len(), None);
        assert!(Interval::point(3).is_point());
    }

    #[test]
    fn contains_is_half_open() {
        let i = iv(2012, 2014);
        assert!(i.contains(2012));
        assert!(i.contains(2013));
        assert!(!i.contains(2014));
        assert!(!i.contains(2011));
        assert!(Interval::from(8).contains(u64::MAX));
    }

    #[test]
    fn overlap_and_adjacency_match_paper() {
        // [2012,2014) and [2014,∞) are adjacent, not overlapping.
        let a = iv(2012, 2014);
        let b = Interval::from(2014);
        assert!(!a.overlaps(&b));
        assert!(a.adjacent(&b));
        assert!(b.adjacent(&a));
        // [5,11) and [8,15) overlap.
        assert!(iv(5, 11).overlaps(&iv(8, 15)));
        // Disjoint non-adjacent.
        assert!(!iv(1, 2).overlaps(&iv(3, 4)));
        assert!(!iv(1, 2).adjacent(&iv(3, 4)));
    }

    #[test]
    fn intersection() {
        assert_eq!(iv(5, 11).intersect(&iv(8, 15)), Some(iv(8, 11)));
        assert_eq!(iv(5, 11).intersect(&iv(11, 15)), None);
        assert_eq!(
            Interval::from(2014).intersect(&Interval::from(2016)),
            Some(Interval::from(2016))
        );
        assert_eq!(iv(0, 4).intersect(&Interval::from(2)), Some(iv(2, 4)));
    }

    #[test]
    fn join_hull() {
        assert_eq!(iv(0, 3).join(&iv(3, 5)), Some(iv(0, 5)));
        assert_eq!(iv(0, 4).join(&iv(2, 5)), Some(iv(0, 5)));
        assert_eq!(iv(0, 2).join(&iv(3, 5)), None);
        assert_eq!(iv(0, 2).join(&Interval::from(2)), Some(Interval::all()));
    }

    #[test]
    fn subtraction() {
        assert_eq!(iv(0, 10).subtract(&iv(3, 5)), vec![iv(0, 3), iv(5, 10)]);
        assert_eq!(iv(0, 10).subtract(&iv(0, 5)), vec![iv(5, 10)]);
        assert_eq!(iv(0, 10).subtract(&iv(5, 10)), vec![iv(0, 5)]);
        assert_eq!(iv(0, 10).subtract(&iv(0, 10)), Vec::<Interval>::new());
        assert_eq!(iv(0, 10).subtract(&iv(20, 30)), vec![iv(0, 10)]);
        assert_eq!(
            Interval::from(0).subtract(&iv(2, 4)),
            vec![iv(0, 2), Interval::from(4)]
        );
    }

    #[test]
    fn split() {
        assert_eq!(iv(5, 11).split_at(8), Some((iv(5, 8), iv(8, 11))));
        assert_eq!(iv(5, 11).split_at(5), None);
        assert_eq!(iv(5, 11).split_at(11), None);
        assert_eq!(
            Interval::from(5).split_at(8),
            Some((iv(5, 8), Interval::from(8)))
        );
    }

    #[test]
    fn allen_relations() {
        use AllenRelation::*;
        assert_eq!(iv(0, 2).allen(&iv(3, 5)), Before);
        assert_eq!(iv(0, 3).allen(&iv(3, 5)), Meets);
        assert_eq!(iv(0, 4).allen(&iv(2, 6)), Overlaps);
        assert_eq!(iv(2, 4).allen(&iv(2, 6)), Starts);
        assert_eq!(iv(3, 4).allen(&iv(2, 6)), During);
        assert_eq!(iv(4, 6).allen(&iv(2, 6)), Finishes);
        assert_eq!(iv(2, 6).allen(&iv(2, 6)), Equals);
        assert_eq!(iv(2, 6).allen(&iv(3, 6)), FinishedBy);
        assert_eq!(iv(2, 6).allen(&iv(3, 5)), Contains);
        assert_eq!(iv(2, 6).allen(&iv(2, 4)), StartedBy);
        assert_eq!(iv(2, 6).allen(&iv(0, 4)), OverlappedBy);
        assert_eq!(iv(3, 5).allen(&iv(0, 3)), MetBy);
        assert_eq!(iv(3, 5).allen(&iv(0, 2)), After);
        // Infinite ends behave like a common +∞ endpoint.
        assert_eq!(Interval::from(2).allen(&Interval::from(2)), Equals);
        assert_eq!(Interval::from(2).allen(&Interval::from(4)), FinishedBy);
        assert_eq!(Interval::from(4).allen(&Interval::from(2)), Finishes);
    }

    #[test]
    fn points_until_clips() {
        let pts: Vec<_> = Interval::from(3).points_until(6).collect();
        assert_eq!(pts, vec![3, 4, 5]);
        let pts: Vec<_> = iv(1, 3).points_until(10).collect();
        assert_eq!(pts, vec![1, 2]);
        let pts: Vec<_> = iv(5, 8).points_until(5).collect();
        assert!(pts.is_empty());
    }

    #[test]
    fn display() {
        assert_eq!(iv(2012, 2014).to_string(), "[2012, 2014)");
        assert_eq!(Interval::from(2014).to_string(), "[2014, ∞)");
    }
}
