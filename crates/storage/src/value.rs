//! Stored values: constants and labeled nulls.

use std::fmt;
use std::sync::Arc;
use tdx_logic::Constant;

/// The base identifier of a labeled null.
///
/// In a snapshot instance a `NullId` *is* the labeled null. In a temporal
/// instance a null is interval-annotated (`N^[s,e)`, Section 4.1 of the
/// paper); the annotation always equals the containing fact's interval, so
/// the pair *(base, fact interval)* identifies the annotated null and only
/// the base is stored.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NullId(pub u64);

impl fmt::Display for NullId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

impl fmt::Debug for NullId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// A generator of fresh null bases. Each chase run owns one, so null ids are
/// deterministic for a given input and step order.
#[derive(Debug, Default, Clone)]
pub struct NullGen {
    next: u64,
}

impl NullGen {
    /// A generator starting at `N0`.
    pub fn new() -> NullGen {
        NullGen::default()
    }

    /// A generator starting above every null in use (for resuming).
    pub fn starting_at(next: u64) -> NullGen {
        NullGen { next }
    }

    /// Allocates a fresh null base.
    pub fn fresh(&mut self) -> NullId {
        let id = NullId(self.next);
        self.next += 1;
        id
    }

    /// The next id that would be allocated.
    pub fn peek(&self) -> u64 {
        self.next
    }
}

/// A stored value: a constant or a labeled null (naïve-table semantics —
/// two nulls are equal iff they have the same id).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// A constant from the data domain.
    Const(Constant),
    /// A labeled null.
    Null(NullId),
}

impl Value {
    /// Shorthand for a string constant value.
    pub fn str(s: &str) -> Value {
        Value::Const(Constant::str(s))
    }

    /// Shorthand for an integer constant value.
    pub fn int(i: i64) -> Value {
        Value::Const(Constant::Int(i))
    }

    /// The constant inside, if any.
    pub fn as_const(&self) -> Option<Constant> {
        match self {
            Value::Const(c) => Some(*c),
            Value::Null(_) => None,
        }
    }

    /// The null base inside, if any.
    pub fn as_null(&self) -> Option<NullId> {
        match self {
            Value::Const(_) => None,
            Value::Null(n) => Some(*n),
        }
    }

    /// Whether this is a null.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null(_))
    }
}

impl From<Constant> for Value {
    fn from(c: Constant) -> Self {
        Value::Const(c)
    }
}

impl From<NullId> for Value {
    fn from(n: NullId) -> Self {
        Value::Null(n)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Const(c) => write!(f, "{c}"),
            Value::Null(n) => write!(f, "{n}"),
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// A stored tuple of data-attribute values. `Arc` so rows can be shared
/// between the row vector and the dedup set, and so fragmentation (which
/// copies only intervals) is cheap.
pub type Row = Arc<[Value]>;

/// Builds a [`Row`] from values.
pub fn row<I: IntoIterator<Item = Value>>(vals: I) -> Row {
    vals.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_gen_is_sequential() {
        let mut g = NullGen::new();
        assert_eq!(g.fresh(), NullId(0));
        assert_eq!(g.fresh(), NullId(1));
        assert_eq!(g.peek(), 2);
        let mut g = NullGen::starting_at(10);
        assert_eq!(g.fresh(), NullId(10));
    }

    #[test]
    fn value_equality_is_naive() {
        assert_eq!(Value::str("Ada"), Value::str("Ada"));
        assert_ne!(Value::str("Ada"), Value::Null(NullId(0)));
        assert_ne!(Value::Null(NullId(0)), Value::Null(NullId(1)));
        assert_eq!(Value::Null(NullId(3)), Value::Null(NullId(3)));
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::int(5).as_const(), Some(Constant::Int(5)));
        assert_eq!(Value::int(5).as_null(), None);
        assert!(Value::Null(NullId(1)).is_null());
        assert_eq!(Value::Null(NullId(1)).as_null(), Some(NullId(1)));
    }

    #[test]
    fn display() {
        assert_eq!(Value::str("IBM").to_string(), "IBM");
        assert_eq!(Value::Null(NullId(7)).to_string(), "N7");
    }

    #[test]
    fn row_builder() {
        let r = row([Value::str("Ada"), Value::int(1)]);
        assert_eq!(r.len(), 2);
        assert_eq!(r[0], Value::str("Ada"));
    }
}
