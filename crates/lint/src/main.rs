//! The `tdx-lint` CLI.
//!
//! ```text
//! tdx-lint --workspace [--root DIR]   # scan src/ + crates/*/src + protocol check
//! tdx-lint [--fault-path] FILE...     # scan explicit files (fixtures, editors)
//! ```
//!
//! Exit codes: 0 clean, 1 findings, 2 usage or I/O error. Findings print
//! as `path:line: [rule] message` — clickable in most terminals and
//! greppable in CI logs.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut workspace = false;
    let mut fault_path = false;
    let mut root = PathBuf::from(".");
    let mut files: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--fault-path" => fault_path = true,
            "--root" => match it.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage("--root needs a directory"),
            },
            "--help" | "-h" => {
                eprintln!(
                    "usage: tdx-lint --workspace [--root DIR] | tdx-lint [--fault-path] FILE..."
                );
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => return usage(&format!("unknown flag {other}")),
            file => files.push(file.to_owned()),
        }
    }
    if !workspace && files.is_empty() {
        return usage("pass --workspace or at least one file");
    }

    let findings = if workspace {
        match tdx_lint::scan_workspace(&root) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("tdx-lint: cannot scan {}: {e}", root.display());
                return ExitCode::from(2);
            }
        }
    } else {
        let mut findings = Vec::new();
        for file in &files {
            let src = match std::fs::read_to_string(file) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("tdx-lint: cannot read {file}: {e}");
                    return ExitCode::from(2);
                }
            };
            // `--fault-path` arms the panic/index rules regardless of the
            // file name, so fixtures and one-off audits can use them.
            let armed = fault_path || tdx_lint::is_fault_path(file);
            findings.extend(tdx_lint::scan_source_with(file, &src, armed));
        }
        findings
    };

    for f in &findings {
        println!("{f}");
    }
    if findings.is_empty() {
        println!("tdx-lint: clean");
        ExitCode::SUCCESS
    } else {
        println!("tdx-lint: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("tdx-lint: {msg}");
    eprintln!("usage: tdx-lint --workspace [--root DIR] | tdx-lint [--fault-path] FILE...");
    ExitCode::from(2)
}
