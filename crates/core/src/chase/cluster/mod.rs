//! The distributed partition-server c-chase
//! (`ChaseEngine::Distributed { servers }`), as a layered cluster
//! subsystem.
//!
//! The partitioned engine (`chase/partitioned.rs`) already confines every
//! shared-interval match to one timeline partition and ships round changes
//! through the delta log; this subsystem distributes those partitions
//! across **partition servers** and turns the remaining coupling into an
//! explicit message protocol over pluggable carriers. The layers, bottom
//! up:
//!
//! * [`protocol`] — the message shapes and their byte codec
//!   ([`tdx_storage::codec`]): `Hello` (the [`ServerConfig`] handshake),
//!   delta-only `ApplyDelta` against a retained-prefix watermark,
//!   `RunTgdRound`/`RunLocalEgdRound`, `Snapshot`, `Ping`, `Shutdown`.
//! * [`server`] — the server state machine and its carrier loops: behind
//!   an in-process channel pair, or behind a TCP connection (the
//!   `tdx serve-partition` subcommand).
//! * [`transport`] — how frames travel: the [`Transport`] trait with
//!   [`ChannelTransport`] (in-process actors) and [`TcpTransport`] (real
//!   child processes over loopback TCP) backends, plus the
//!   [`FaultInjector`] test harness.
//! * [`chaos`] — the seeded fail-slow fault harness: [`ChaosSpawner`] /
//!   `ChaosTransport` replay a [`FaultPlan`] of delays, hangs, drops,
//!   corruption, duplicates and partial writes against any inner
//!   transport.
//! * [`coordinator`] — the global chase state: the coordinator kernel
//!   (restricted checks + union-find folds shared with the partitioned
//!   engine and the incremental session), [`DistributedCluster`] with
//!   heartbeat/retry, backoff + quarantine ([`ServerHealth`]) and
//!   delta-only shipping, and the batch engine loop.
//!
//! See `docs/distributed.md` for the protocol and equivalence argument,
//! `docs/transport.md` for the transport layer and the watermark
//! invariant, and `docs/robustness.md` for the failure model.

pub mod chaos;
pub mod coordinator;
pub mod protocol;
pub mod server;
pub mod transport;

pub use chaos::{ChaosSpawner, FaultKind, FaultPlan, FaultSpec};
pub use coordinator::{
    c_chase_distributed_with, snapshot_consistent, DistributedCluster, ServerHealth, TrafficStats,
};
pub use protocol::{
    config_digest, image_digest, Hom, MergeOp, Message, Response, ServerConfig, StoreKind, WireHom,
};
pub use server::serve_listen;
pub use transport::{
    resolve_transport, spawner_for, ChannelSpawner, ChannelTransport, DurableTcpSpawner,
    FaultInjector, TcpSpawner, TcpTransport, Transport, TransportKind, TransportSpawner,
};

pub(crate) use coordinator::{
    classify_check, fold_merge_ops, is_transport_error, memo_probe_key, register_memo, Check,
    TgdFolder,
};
