//! Offline stand-in for the subset of the `proptest` crate this workspace
//! uses.
//!
//! The build environment has no access to crates.io, so the property tests
//! link against this drop-in. It keeps the `proptest!` surface syntax —
//! strategies, `prop_map`, `prop_oneof!`, `prop_assert*!` — but replaces the
//! engine with plain deterministic random sampling: each test runs
//! `ProptestConfig::cases` cases seeded from the test's name, with **no
//! shrinking** on failure (the failing values are printed instead).

#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

/// Strategy combinators on primitive namespaces (`prop::collection::vec`,
/// `prop::bool::weighted`, …), mirroring upstream's `prop` module.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::{Strategy, VecStrategy};
        use std::ops::Range;

        /// A vector whose length is drawn from `len` and whose elements are
        /// drawn from `element`.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }
    }

    /// Boolean strategies.
    pub mod bool {
        use crate::strategy::WeightedBool;

        /// `true` with probability `p`.
        pub fn weighted(p: f64) -> WeightedBool {
            WeightedBool { p }
        }
    }

    /// Option strategies.
    pub mod option {
        use crate::strategy::{Strategy, WeightedOption};

        /// `Some` with probability `p`, drawing the payload from `inner`.
        pub fn weighted<S: Strategy>(p: f64, inner: S) -> WeightedOption<S> {
            WeightedOption { p, inner }
        }
    }

    /// Sampling from fixed pools.
    pub mod sample {
        use crate::strategy::Select;

        /// A uniformly chosen element of `options` (cloned).
        pub fn select<T: Clone>(options: &'static [T]) -> Select<T> {
            Select { options }
        }
    }
}

/// Everything a test module needs, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Asserts a condition inside a property test case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property test case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// A uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Declares property tests. Supports the upstream surface syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn my_prop(x in 0u64..10, v in prop::collection::vec(0u8..4, 0..6)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{ ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    (($cfg:expr); $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            $crate::test_runner::run(&__config, stringify!($name), |__rng| {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), __rng);)*
                // Upstream bodies may `return Ok(())` to discard a case.
                let __case = move || -> ::std::result::Result<(), ::std::string::String> {
                    $body
                    Ok(())
                };
                if let Err(e) = __case() {
                    panic!("{e}");
                }
            });
        }
        $crate::__proptest_items!{ ($cfg); $($rest)* }
    };
    (($cfg:expr);) => {};
}
