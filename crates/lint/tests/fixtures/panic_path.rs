//! Fixture: panic sites — findings only when scanned as a fault path.

fn decode(bytes: &[u8]) -> u32 {
    let head: [u8; 4] = bytes[..4].try_into().unwrap(); // line 4: panic (and index)
    if bytes.len() > 64 {
        panic!("frame too long"); // line 6: panic
    }
    u32::from_le_bytes(head)
}

fn lookup(xs: &[u32], i: usize) -> u32 {
    xs.get(i).copied().expect("caller checked bounds") // line 12: panic
}
