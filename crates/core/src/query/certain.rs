//! Certain answers (paper Section 5, Theorem 21 and Corollary 22).
//!
//! `certain(q, ⟦I_c⟧, M)` — the tuples present in `q`'s answer on *every*
//! solution, snapshot by snapshot — equals naïve evaluation of `q⁺` on the
//! result of the c-chase (Corollary 22). This module provides both routes
//! and the cross-check used by the `QA` experiment:
//!
//! * the **concrete route**: c-chase then [`naive_eval_concrete`];
//! * the **abstract route**: abstract chase then per-epoch snapshot naïve
//!   evaluation.

use crate::abstract_view::{AValue, AbstractInstance};
use crate::chase::abstract_chase::abstract_chase;
use crate::chase::concrete::{c_chase_with, ChaseOptions};
use crate::error::Result;
use crate::query::concrete::{naive_eval_concrete, naive_eval_concrete_with, TemporalAnswers};
use crate::query::naive::naive_eval_snapshot;
use crate::semantics::semantics;
use std::collections::BTreeSet;
use tdx_logic::{Constant, SchemaMapping, UnionQuery};
use tdx_storage::{Instance, NullId, TemporalInstance, Value};
use tdx_temporal::Interval;

/// Per-epoch answer sets over the whole timeline, coalesced.
pub type EpochAnswers = Vec<(Interval, BTreeSet<Vec<Constant>>)>;

/// Evaluates `q` snapshot-wise on an abstract instance with naïve semantics
/// (`q(J_a)↓` in the paper): per epoch, nulls act as fresh constants and
/// null-carrying tuples are dropped.
pub fn naive_eval_abstract(ja: &AbstractInstance, q: &UnionQuery) -> Result<EpochAnswers> {
    let mut out: EpochAnswers = Vec::new();
    for epoch in ja.epochs() {
        // Encode scoped nulls injectively into plain labeled nulls: inside
        // one epoch a per-point family member and a rigid null are both just
        // "some null", but distinct bases must stay distinct.
        let mut db = Instance::new(epoch.snapshot.schema_arc());
        for (rel, row) in epoch.snapshot.iter_all() {
            db.insert(
                rel,
                row.iter()
                    .map(|v| match v {
                        AValue::Const(c) => Value::Const(*c),
                        AValue::PerPoint(b) => Value::Null(NullId(2 * b.0)),
                        AValue::Rigid(b) => Value::Null(NullId(2 * b.0 + 1)),
                    })
                    .collect(),
            );
        }
        let answers = naive_eval_snapshot(&db, q)?;
        match out.last_mut() {
            Some((iv, last)) if *last == answers => {
                *iv = iv.join(&epoch.interval).expect("adjacent epochs");
            }
            _ => out.push((epoch.interval, answers)),
        }
    }
    Ok(out)
}

/// Certain answers via the concrete route (Corollary 22): run the c-chase,
/// then naïve-evaluate `q⁺` on the concrete solution.
pub fn certain_answers_concrete(
    ic: &TemporalInstance,
    mapping: &SchemaMapping,
    q: &UnionQuery,
    opts: &ChaseOptions,
) -> Result<TemporalAnswers> {
    let chased = c_chase_with(ic, mapping, opts)?;
    naive_eval_concrete_with(&chased.target, q, opts.search_options())
}

/// Certain answers via the abstract route: chase `⟦I_c⟧` snapshot-wise
/// (Proposition 4 gives a universal solution), then naïve-evaluate per
/// snapshot.
pub fn certain_answers_abstract(
    ic: &TemporalInstance,
    mapping: &SchemaMapping,
    q: &UnionQuery,
) -> Result<EpochAnswers> {
    let ja = abstract_chase(&semantics(ic), mapping)?;
    naive_eval_abstract(&ja, q)
}

/// Theorem 21 instance check: `⟦q⁺(J_c)↓⟧ = q(⟦J_c⟧)↓` for a given concrete
/// instance (typically a c-chase result).
pub fn theorem21_holds(jc: &TemporalInstance, q: &UnionQuery) -> Result<bool> {
    let concrete = naive_eval_concrete(jc, q)?.epochs();
    let abstract_side = naive_eval_abstract(&semantics(jc), q)?;
    Ok(concrete == abstract_side)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tdx_logic::{parse_egd, parse_query, parse_schema, parse_tgd};

    fn iv(s: u64, e: u64) -> Interval {
        Interval::new(s, e)
    }

    fn paper_mapping() -> SchemaMapping {
        SchemaMapping::new(
            parse_schema("E(name, company). S(name, salary).").unwrap(),
            parse_schema("Emp(name, company, salary).").unwrap(),
            vec![
                parse_tgd("E(n,c) -> Emp(n,c,s)").unwrap(),
                parse_tgd("E(n,c) & S(n,s) -> Emp(n,c,s)").unwrap(),
            ],
            vec![parse_egd("Emp(n,c,s) & Emp(n,c,s2) -> s = s2").unwrap()],
        )
        .unwrap()
    }

    fn figure4(mapping: &SchemaMapping) -> TemporalInstance {
        let mut i = TemporalInstance::new(Arc::new(mapping.source().clone()));
        i.insert_strs("E", &["Ada", "IBM"], iv(2012, 2014));
        i.insert_strs("E", &["Ada", "Google"], Interval::from(2014));
        i.insert_strs("E", &["Bob", "IBM"], iv(2013, 2018));
        i.insert_strs("S", &["Ada", "18k"], Interval::from(2013));
        i.insert_strs("S", &["Bob", "13k"], Interval::from(2015));
        i
    }

    #[test]
    fn corollary22_concrete_equals_abstract() {
        let mapping = paper_mapping();
        let ic = figure4(&mapping);
        for q_text in [
            "Q(n, s) :- Emp(n, c, s)",
            "Q(n) :- Emp(n, c, s)",
            "Q(n, c) :- Emp(n, c, s)",
            "Q(m) :- Emp(Ada, c, s) & Emp(m, c, s2)",
        ] {
            let q: UnionQuery = parse_query(q_text).unwrap().into();
            let concrete = certain_answers_concrete(&ic, &mapping, &q, &ChaseOptions::default())
                .unwrap()
                .epochs();
            let abstract_side = certain_answers_abstract(&ic, &mapping, &q).unwrap();
            assert_eq!(concrete, abstract_side, "query: {q_text}");
        }
    }

    #[test]
    fn certain_salary_answers_match_paper() {
        let mapping = paper_mapping();
        let ic = figure4(&mapping);
        let q: UnionQuery = parse_query("Q(n, s) :- Emp(n, c, s)").unwrap().into();
        let ans = certain_answers_concrete(&ic, &mapping, &q, &ChaseOptions::default()).unwrap();
        // Certain: Ada earns 18k from 2013 on; Bob earns 13k on [2015,2018).
        // Ada's 2012 salary and Bob's 2013–2015 salary are unknown — not
        // certain.
        assert_eq!(ans.len(), 2);
        assert_eq!(ans.at(2012).len(), 0);
        assert_eq!(ans.at(2013).len(), 1);
        assert_eq!(ans.at(2016).len(), 2);
        assert_eq!(ans.at(2018).len(), 1);
    }

    #[test]
    fn theorem21_on_chase_result() {
        let mapping = paper_mapping();
        let ic = figure4(&mapping);
        let jc = crate::chase::concrete::c_chase(&ic, &mapping)
            .unwrap()
            .target;
        for q_text in [
            "Q(n, s) :- Emp(n, c, s)",
            "Q(n, c) :- Emp(n, c, s)",
            "Q(m, c) :- Emp(Ada, c, s) & Emp(m, c, s2)",
        ] {
            let q: UnionQuery = parse_query(q_text).unwrap().into();
            assert!(theorem21_holds(&jc, &q).unwrap(), "query: {q_text}");
        }
    }

    #[test]
    fn certain_answers_are_contained_in_any_solution_answers() {
        // Soundness of certain answers: build a fatter solution by resolving
        // nulls and adding facts; every certain answer must appear in it.
        let mapping = paper_mapping();
        let ic = figure4(&mapping);
        let q: UnionQuery = parse_query("Q(n, s) :- Emp(n, c, s)").unwrap().into();
        let certain =
            certain_answers_concrete(&ic, &mapping, &q, &ChaseOptions::default()).unwrap();
        // A solution: chase result with nulls replaced by concrete salaries
        // plus an extra unrelated fact.
        let jc = crate::chase::concrete::c_chase(&ic, &mapping)
            .unwrap()
            .target;
        let mut solution = jc.map_values(|v, _| match v {
            Value::Null(_) => Value::str("42k"),
            other => *other,
        });
        solution.insert_strs("Emp", &["Cyd", "Intel", "9k"], iv(0, 1));
        let solution_answers = naive_eval_concrete(&solution, &q).unwrap();
        for (tuple, set) in certain.rows() {
            let sol = solution_answers
                .rows()
                .find(|(t, _)| t == &tuple)
                .expect("certain tuple present in solution");
            for ivl in set.intervals() {
                assert!(sol.1.covers(ivl));
            }
        }
    }
}
