//! An append-only interval-endpoint index.
//!
//! [`IntervalIndex`] maps a growing sequence of intervals (identified by
//! their insertion order, a dense `u32` id) to three query capabilities the
//! storage and chase layers need:
//!
//! * **overlap probes** — all intervals sharing at least one time point with
//!   a query interval (the candidate-set condition of Algorithm 1 and the
//!   backbone of normalization group discovery);
//! * **exact probes** — all intervals equal to a query interval (the shared
//!   temporal variable `t` of c-chase steps, Definition 16);
//! * **endpoint enumeration** — the distinct start/end points seen so far,
//!   maintained incrementally so normalization can fetch breakpoints without
//!   rescanning facts.
//!
//! Internally the index keeps the intervals sorted by start with a
//! max-endpoint segment tree on top (the classic array-backed interval
//! tree), giving `O(log n + k)` overlap queries. Appends are `O(1)` and land
//! in an unsorted tail that queries scan linearly; the sorted order and tree
//! are rebuilt lazily once the tail outgrows a fraction of the built prefix,
//! so interleaved insert/probe workloads (the chase's tgd phase) stay
//! near-linear instead of rebuilding per probe.

use crate::interval::Interval;
use crate::point::{Endpoint, TimePoint};
use std::collections::BTreeSet;

/// An append-only index over intervals keyed by dense insertion ids.
#[derive(Clone, Default)]
pub struct IntervalIndex {
    /// All intervals, by insertion id.
    ivs: Vec<Interval>,
    /// Insertion ids sorted by `(start, end)`.
    order: Vec<u32>,
    /// `starts[i] = ivs[order[i]].start()` — the sorted start array.
    starts: Vec<TimePoint>,
    /// Max-end segment tree over `order` (1-based heap layout, node 1 is the
    /// root; `tree[n]` covers a contiguous range of `order`).
    tree: Vec<Endpoint>,
    /// Number of intervals reflected in `order`/`starts`/`tree`.
    built: usize,
    /// Distinct endpoints (starts and finite ends) of every interval ever
    /// pushed.
    points: BTreeSet<TimePoint>,
}

impl IntervalIndex {
    /// An empty index.
    pub fn new() -> IntervalIndex {
        IntervalIndex::default()
    }

    /// Number of indexed intervals.
    pub fn len(&self) -> usize {
        self.ivs.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.ivs.is_empty()
    }

    /// Appends an interval, returning its id. `O(1)` amortized (plus the
    /// endpoint-set insertion); the query structures refresh lazily.
    pub fn push(&mut self, iv: Interval) -> u32 {
        let id = u32::try_from(self.ivs.len()).expect("interval index overflow");
        self.ivs.push(iv);
        self.points.insert(iv.start());
        if let Endpoint::Fin(e) = iv.end() {
            self.points.insert(e);
        }
        id
    }

    /// The interval with insertion id `id`.
    pub fn get(&self, id: u32) -> Interval {
        self.ivs[id as usize]
    }

    /// The distinct endpoints (starts and finite ends) seen so far, in
    /// ascending order.
    pub fn endpoints(&self) -> impl Iterator<Item = TimePoint> + '_ {
        self.points.iter().copied()
    }

    /// Rebuilds the sorted order and the max-end tree once the unsorted tail
    /// outgrows a fraction of the built prefix. Small tails are left in
    /// place — queries scan them linearly — so interleaved appends and
    /// probes do not trigger quadratic rebuild storms.
    pub fn ensure_built(&mut self) {
        let pending = self.ivs.len() - self.built;
        if pending == 0 || pending <= 64 + self.built / 8 {
            return;
        }
        self.rebuild();
    }

    /// Unconditionally absorbs the tail into the tree.
    pub fn rebuild(&mut self) {
        if self.built == self.ivs.len() {
            return;
        }
        let n = self.ivs.len();
        self.order = (0..n as u32).collect();
        let ivs = &self.ivs;
        self.order
            .sort_unstable_by_key(|&id| (ivs[id as usize].start(), ivs[id as usize].end()));
        self.starts = self
            .order
            .iter()
            .map(|&id| ivs[id as usize].start())
            .collect();
        self.tree = vec![Endpoint::Fin(0); 4 * n.max(1)];
        if n > 0 {
            self.build_tree(1, 0, n);
        }
        self.built = n;
    }

    fn build_tree(&mut self, node: usize, lo: usize, hi: usize) {
        if hi - lo == 1 {
            self.tree[node] = self.ivs[self.order[lo] as usize].end();
            return;
        }
        let mid = lo + (hi - lo) / 2;
        self.build_tree(2 * node, lo, mid);
        self.build_tree(2 * node + 1, mid, hi);
        self.tree[node] = self.tree[2 * node].max(self.tree[2 * node + 1]);
    }

    /// Visits the ids of all intervals overlapping `q` (sharing at least one
    /// time point): tree descent over the built prefix plus a linear scan of
    /// the unsorted tail. Call [`IntervalIndex::ensure_built`] first.
    pub fn visit_overlapping(&self, q: &Interval, f: &mut dyn FnMut(u32)) {
        if self.built > 0 {
            self.visit_node(1, 0, self.built, q, f);
        }
        for id in self.built..self.ivs.len() {
            if self.ivs[id].overlaps(q) {
                f(id as u32);
            }
        }
    }

    fn visit_node(&self, node: usize, lo: usize, hi: usize, q: &Interval, f: &mut dyn FnMut(u32)) {
        // No interval in this subtree ends after q's start…
        if self.tree[node] <= Endpoint::Fin(q.start()) {
            return;
        }
        // …and none starts before q's end (starts are sorted, `lo` is the
        // subtree minimum).
        if Endpoint::Fin(self.starts[lo]) >= q.end() {
            return;
        }
        if hi - lo == 1 {
            // Both prunes passed on a single leaf ⇒ it overlaps.
            f(self.order[lo]);
            return;
        }
        let mid = lo + (hi - lo) / 2;
        self.visit_node(2 * node, lo, mid, q, f);
        self.visit_node(2 * node + 1, mid, hi, q, f);
    }

    /// Number of intervals overlapping `q`. Call
    /// [`IntervalIndex::ensure_built`] first.
    pub fn count_overlapping(&self, q: &Interval) -> usize {
        let mut n = 0usize;
        self.visit_overlapping(q, &mut |_| n += 1);
        n
    }

    /// Visits the ids of all intervals exactly equal to `q`, via binary
    /// search on the sorted `(start, end)` order plus a linear scan of the
    /// unsorted tail. Call [`IntervalIndex::ensure_built`] first.
    pub fn visit_exact(&self, q: &Interval, f: &mut dyn FnMut(u32)) {
        for id in self.built..self.ivs.len() {
            if self.ivs[id] == *q {
                f(id as u32);
            }
        }
        let key = (q.start(), q.end());
        let lo = self.order.partition_point(|&id| {
            (self.ivs[id as usize].start(), self.ivs[id as usize].end()) < key
        });
        for &id in &self.order[lo..] {
            let iv = self.ivs[id as usize];
            if (iv.start(), iv.end()) != key {
                break;
            }
            f(id);
        }
    }

    /// Number of intervals exactly equal to `q`. Call
    /// [`IntervalIndex::ensure_built`] first.
    pub fn count_exact(&self, q: &Interval) -> usize {
        let mut n = 0usize;
        self.visit_exact(q, &mut |_| n += 1);
        n
    }

    /// Visits the ids of all intervals containing the time point `t`.
    pub fn visit_containing(&self, t: TimePoint, f: &mut dyn FnMut(u32)) {
        self.visit_overlapping(&Interval::point(t), f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(s: u64, e: u64) -> Interval {
        Interval::new(s, e)
    }

    fn collect_overlaps(idx: &IntervalIndex, q: Interval) -> Vec<u32> {
        let mut out = Vec::new();
        idx.visit_overlapping(&q, &mut |id| out.push(id));
        out.sort_unstable();
        out
    }

    #[test]
    fn overlap_matches_brute_force() {
        let mut idx = IntervalIndex::new();
        let data = [
            iv(5, 11),
            iv(8, 15),
            iv(20, 25),
            iv(7, 10),
            Interval::from(18),
            iv(0, 3),
            iv(3, 5),
        ];
        for d in data {
            idx.push(d);
        }
        idx.ensure_built();
        for q in [
            iv(0, 40),
            iv(9, 10),
            iv(15, 18),
            Interval::from(24),
            iv(4, 6),
        ] {
            let expect: Vec<u32> = data
                .iter()
                .enumerate()
                .filter(|(_, d)| d.overlaps(&q))
                .map(|(i, _)| i as u32)
                .collect();
            assert_eq!(collect_overlaps(&idx, q), expect, "query {q}");
            assert_eq!(idx.count_overlapping(&q), expect.len());
        }
    }

    #[test]
    fn lazy_rebuild_after_append() {
        let mut idx = IntervalIndex::new();
        idx.push(iv(0, 5));
        idx.ensure_built();
        assert_eq!(collect_overlaps(&idx, iv(0, 10)), vec![0]);
        // A small tail is served by the linear scan without a rebuild…
        idx.push(iv(7, 9));
        idx.ensure_built();
        assert_eq!(collect_overlaps(&idx, iv(0, 10)), vec![0, 1]);
        assert_eq!(idx.get(1), iv(7, 9));
        assert_eq!(idx.len(), 2);
        // …and a forced rebuild gives the same answers through the tree.
        idx.rebuild();
        assert_eq!(collect_overlaps(&idx, iv(0, 10)), vec![0, 1]);
        assert_eq!(collect_overlaps(&idx, iv(5, 7)), vec![]);
    }

    #[test]
    fn tail_and_tree_agree_under_interleaving() {
        let mut idx = IntervalIndex::new();
        let mut all = Vec::new();
        for i in 0..500u64 {
            let s = (i * 37) % 211;
            let e = s + 1 + (i * 13) % 17;
            idx.push(iv(s, e));
            all.push(iv(s, e));
            if i % 7 == 0 {
                idx.ensure_built();
                let q = iv((i * 11) % 200, (i * 11) % 200 + 9);
                let expect: Vec<u32> = all
                    .iter()
                    .enumerate()
                    .filter(|(_, d)| d.overlaps(&q))
                    .map(|(k, _)| k as u32)
                    .collect();
                assert_eq!(collect_overlaps(&idx, q), expect, "step {i}");
                assert_eq!(idx.count_exact(&all[i as usize]), {
                    all.iter().filter(|d| **d == all[i as usize]).count()
                });
            }
        }
    }

    #[test]
    fn exact_probes() {
        let mut idx = IntervalIndex::new();
        idx.push(iv(1, 4));
        idx.push(iv(1, 4));
        idx.push(iv(1, 5));
        idx.push(Interval::from(1));
        idx.ensure_built();
        assert_eq!(idx.count_exact(&iv(1, 4)), 2);
        assert_eq!(idx.count_exact(&iv(1, 5)), 1);
        assert_eq!(idx.count_exact(&Interval::from(1)), 1);
        assert_eq!(idx.count_exact(&iv(2, 4)), 0);
        let mut ids = Vec::new();
        idx.visit_exact(&iv(1, 4), &mut |id| ids.push(id));
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1]);
    }

    #[test]
    fn containing_and_endpoints() {
        let mut idx = IntervalIndex::new();
        idx.push(iv(2012, 2014));
        idx.push(Interval::from(2014));
        idx.ensure_built();
        let mut hits = Vec::new();
        idx.visit_containing(2013, &mut |id| hits.push(id));
        assert_eq!(hits, vec![0]);
        let mut hits = Vec::new();
        idx.visit_containing(2030, &mut |id| hits.push(id));
        assert_eq!(hits, vec![1]);
        let pts: Vec<TimePoint> = idx.endpoints().collect();
        assert_eq!(pts, vec![2012, 2014]);
    }

    #[test]
    fn empty_index_is_quiet() {
        let mut idx = IntervalIndex::new();
        idx.ensure_built();
        assert!(idx.is_empty());
        assert_eq!(idx.count_overlapping(&iv(0, 10)), 0);
        assert_eq!(idx.count_exact(&iv(0, 10)), 0);
    }
}
