//! Protocol-level tests of the distributed partition-server chase: replica
//! shipping for boundary-crossing (and unbounded) facts, snapshot
//! consistency between coordinator and servers, delta-only `ApplyDelta`
//! shipping, clean teardown across transports, and end-to-end behavior on
//! workloads rich in unbounded intervals.

use tdx::core::chase::cluster::snapshot_consistent;
use tdx::core::{hom_equivalent, semantics, DistributedCluster, StoreKind, TransportKind};
use tdx::storage::{SearchOptions, TemporalFact};
use tdx::temporal::{Breakpoints, TimelinePartition};
use tdx::workload::{paper_mapping, EmploymentConfig, EmploymentWorkload};
use tdx::{c_chase_with, ChaseOptions, Interval, Value};

fn iv(s: u64, e: u64) -> Interval {
    Interval::new(s, e)
}

fn fact(vals: &[&str], interval: Interval) -> TemporalFact {
    TemporalFact {
        data: vals.iter().map(|v| Value::str(v)).collect(),
        interval,
    }
}

#[test]
fn replica_sets_follow_the_server_assignment() {
    // Partition at 10/20/30 over three servers: blocks {0,1}, {2}, {3}.
    let mapping = paper_mapping();
    let tp = TimelinePartition::new(&Breakpoints::from_points([10, 20, 30]));
    assert_eq!(tp.server_assignment(3), vec![0, 0, 1, 2]);
    let mut cluster =
        DistributedCluster::spawn(&mapping, &tp, 3, SearchOptions::default()).unwrap();

    let local = fact(&["Ada", "IBM"], iv(0, 5)); // server 0 only
    let crossing = fact(&["Bob", "IBM"], iv(15, 25)); // owner server 0, replica on 1
    let unbounded = fact(&["Cyd", "IBM"], Interval::from(25)); // owner server 1, replica on 2
    assert!(unbounded.interval.is_unbounded());
    let pre = vec![
        vec![local.clone(), crossing.clone(), unbounded.clone()],
        Vec::new(),
    ];
    let delta = vec![Vec::new(), Vec::new()];
    cluster
        .apply_delta(StoreKind::Source, &pre, &delta)
        .unwrap();

    let snaps = cluster.snapshots(StoreKind::Source).unwrap();
    assert_eq!(snaps.len(), 3);
    // Owner blocks: every fact exactly once, at the server owning the
    // partition of its start point.
    assert_eq!(snaps[0].0[0], vec![local, crossing.clone()]);
    assert_eq!(snaps[1].0[0], vec![unbounded.clone()]);
    assert!(snaps[2].0[0].is_empty());
    // Replica sets: the crossing fact reaches server 1; the unbounded fact
    // reaches the server tail (server 2).
    assert_eq!(snaps[0].1[0], Vec::<TemporalFact>::new());
    assert_eq!(snaps[1].1[0], vec![crossing]);
    assert_eq!(snaps[2].1[0], vec![unbounded]);
    // The owner multiset tiles the coordinator's lists exactly.
    assert!(snapshot_consistent(&mut cluster, StoreKind::Source, &pre).unwrap());
    // ... and a diverged coordinator view is detected.
    let wrong = vec![vec![fact(&["Eve", "ACME"], iv(1, 2))], Vec::new()];
    assert!(!snapshot_consistent(&mut cluster, StoreKind::Source, &wrong).unwrap());
}

#[test]
fn delta_shipping_reaches_every_overlapping_server() {
    let mapping = paper_mapping();
    let tp = TimelinePartition::new(&Breakpoints::from_points([10, 20]));
    let mut cluster =
        DistributedCluster::spawn(&mapping, &tp, 3, SearchOptions::default()).unwrap();
    // Ship a delta-only load whose single fact spans all three blocks.
    let spanning = fact(&["Ada", "IBM"], Interval::from(0));
    let pre = vec![Vec::new(), Vec::new()];
    let delta = vec![vec![spanning.clone()], Vec::new()];
    cluster
        .apply_delta(StoreKind::Source, &pre, &delta)
        .unwrap();
    let snaps = cluster.snapshots(StoreKind::Source).unwrap();
    assert_eq!(snaps[0].0[0], vec![spanning.clone()]);
    for (s, snap) in snaps.iter().enumerate().skip(1) {
        assert_eq!(snap.1[0], vec![spanning.clone()], "server {s}");
    }
}

#[test]
fn unbounded_heavy_workload_is_deterministic_and_equivalent() {
    // The employment workload keeps open-ended (unbounded) employments and
    // salaries; under re-chasing at several cluster sizes the distributed
    // engine must stay byte-identical to itself and hom-equivalent to the
    // sequential engine.
    let w = EmploymentWorkload::generate(&EmploymentConfig {
        persons: 30,
        horizon: 24,
        salary_coverage: 0.8,
        seed: 7,
        ..EmploymentConfig::default()
    });
    let unbounded_sources = w
        .source
        .iter_all()
        .filter(|(_, f)| f.interval.is_unbounded())
        .count();
    assert!(
        unbounded_sources > 0,
        "workload must exercise unbounded intervals"
    );
    let seq = c_chase_with(&w.source, &w.mapping, &ChaseOptions::default()).unwrap();
    let one = c_chase_with(&w.source, &w.mapping, &ChaseOptions::distributed(1)).unwrap();
    assert!(hom_equivalent(
        &semantics(&seq.target),
        &semantics(&one.target)
    ));
    for servers in [2usize, 4] {
        let many =
            c_chase_with(&w.source, &w.mapping, &ChaseOptions::distributed(servers)).unwrap();
        assert_eq!(one.target, many.target, "servers = {servers}");
    }
}

#[test]
fn tcp_cluster_speaks_the_same_protocol_as_channel() {
    // The full protocol round-trip — handshake, delta shipping, snapshot
    // audit — over real TCP (child processes when the tdx binary is
    // around, which it is for integration tests).
    let mapping = paper_mapping();
    let tp = TimelinePartition::new(&Breakpoints::from_points([10, 20, 30]));
    let mut cluster = DistributedCluster::spawn_on(
        &mapping,
        &tp,
        3,
        SearchOptions::default(),
        TransportKind::Tcp,
    )
    .unwrap();
    assert_eq!(cluster.transport(), TransportKind::Tcp);
    cluster.heartbeat().unwrap();
    let crossing = fact(&["Bob", "IBM"], iv(15, 25));
    let pre = vec![vec![crossing.clone()], Vec::new()];
    let delta = vec![Vec::new(), Vec::new()];
    cluster
        .apply_delta(StoreKind::Source, &pre, &delta)
        .unwrap();
    assert!(snapshot_consistent(&mut cluster, StoreKind::Source, &pre).unwrap());
    let snaps = cluster.snapshots(StoreKind::Source).unwrap();
    assert_eq!(snaps[1].1[0], vec![crossing]);
}

/// Steady-state `ApplyDelta` traffic of an incremental distributed session
/// must be proportional to the batch, not the store: on employment/100
/// with a 5% batch the batch's shipped bytes are >5× under the full
/// re-ship the PR 4 protocol performed every round (= what the session's
/// base ship still costs).
#[test]
fn incremental_batch_traffic_is_proportional_to_the_batch() {
    use tdx::workload::{employment_stream, BatchOrder, StreamConfig};
    use tdx::{DeltaBatch, IncrementalExchange};
    let stream = employment_stream(
        &EmploymentConfig {
            persons: 100,
            horizon: 30,
            seed: 42,
            ..EmploymentConfig::default()
        },
        &StreamConfig {
            batches: 1,
            batch_fraction: 0.05,
            order: BatchOrder::Uniform,
            ..StreamConfig::default()
        },
    );
    let mut session =
        IncrementalExchange::with_options(stream.mapping.clone(), ChaseOptions::distributed(1))
            .unwrap();
    session
        .apply(&DeltaBatch::from_instance(&stream.base))
        .unwrap();
    let base = session
        .cluster_traffic()
        .expect("distributed session has a cluster");
    // The base batch ships the whole store: pre is empty, everything is
    // fresh — this is exactly the PR 4 full-list re-ship cost for this
    // store size.
    assert!(base.apply_delta_bytes > 0);
    assert_eq!(base.respawns, 0);
    session
        .apply(&DeltaBatch::from_instance(&stream.batches[0]))
        .unwrap();
    let after = session.cluster_traffic().unwrap();
    let batch_bytes = after.apply_delta_bytes - base.apply_delta_bytes;
    let batch_facts = after.apply_delta_facts - base.apply_delta_facts;
    assert!(batch_bytes > 0, "the batch must ship something");
    assert!(
        batch_bytes * 5 < base.apply_delta_bytes,
        "5% batch shipped {batch_bytes} bytes — not >5x under the full re-ship \
         ({} bytes); facts shipped: {batch_facts} vs {}",
        base.apply_delta_bytes,
        base.apply_delta_facts,
    );
    // The session still lands on the right answer. The recursive
    // homomorphism search needs more than a default 2 MiB test-thread
    // stack at this instance size, so the check runs on its own thread.
    let union = stream.union();
    let mapping = stream.mapping.clone();
    let incremental = session.target();
    std::thread::Builder::new()
        .stack_size(64 << 20)
        .spawn(move || {
            let scratch = c_chase_with(&union, &mapping, &ChaseOptions::default()).unwrap();
            assert!(hom_equivalent(
                &semantics(&scratch.target),
                &semantics(&incremental)
            ));
        })
        .unwrap()
        .join()
        .unwrap();
}

/// The fused v2 frames collapse a steady-state incremental batch to one
/// round trip per server per round. The v1 protocol paid a per-batch
/// heartbeat plus separate `ApplyDelta` and enumeration barriers — at
/// minimum 5 round trips per batch (heartbeat, ship+tgd, ship+egd) — where
/// the fused protocol pays `1 + egd_rounds`. Locks in the ≥2× round-trip
/// reduction of the pipelined design.
#[test]
fn fused_rounds_halve_round_trips_for_an_incremental_batch() {
    use tdx::workload::{employment_stream, BatchOrder, StreamConfig};
    use tdx::{DeltaBatch, IncrementalExchange};
    let stream = employment_stream(
        &EmploymentConfig {
            persons: 100,
            horizon: 30,
            seed: 42,
            ..EmploymentConfig::default()
        },
        &StreamConfig {
            batches: 1,
            batch_fraction: 0.05,
            order: BatchOrder::Uniform,
            ..StreamConfig::default()
        },
    );
    let mut session =
        IncrementalExchange::with_options(stream.mapping.clone(), ChaseOptions::distributed(1))
            .unwrap();
    session
        .apply(&DeltaBatch::from_instance(&stream.base))
        .unwrap();
    let base = session.cluster_traffic().unwrap();
    session
        .apply(&DeltaBatch::from_instance(&stream.batches[0]))
        .unwrap();
    let after = session.cluster_traffic().unwrap();
    let batch_rts = after.round_trips - base.round_trips;
    assert!(
        batch_rts >= 2,
        "a batch runs at least the fused tgd and one fused egd barrier, got {batch_rts}"
    );
    // Each fused barrier replaces a v1 ApplyDelta + enumeration pair, and
    // the v1 protocol heartbeat-ed once per batch on top: same rounds, v1
    // cost = 1 + 2 * batch_rts.
    let v1_rts = 1 + 2 * batch_rts;
    assert!(
        2 * batch_rts <= v1_rts,
        "fused batch cost {batch_rts} round trips; v1 would have paid {v1_rts}"
    );
    // And in absolute terms the steady state stays flat: one fused tgd
    // round plus the egd fixpoint (its final empty round included) — well
    // under the v1 floor of 5.
    assert!(
        batch_rts <= 3,
        "steady-state 5% batch cost {batch_rts} round trips — the fused protocol should pay 1 + egd_rounds"
    );
}

#[cfg(target_os = "linux")]
fn thread_count() -> usize {
    std::fs::read_dir("/proc/self/task").unwrap().count()
}

/// Spawning and dropping clusters must not leak server threads or
/// processes: drop sends `Shutdown`, joins the threads and reaps the
/// children. Regression test for the teardown path on both transports.
#[cfg(target_os = "linux")]
#[test]
fn repeated_spawn_drop_does_not_grow_the_thread_count() {
    let mapping = paper_mapping();
    let tp = TimelinePartition::new(&Breakpoints::from_points([10, 20, 30]));
    for transport in [TransportKind::Channel, TransportKind::Tcp] {
        // Warm up once (lazy runtime allocations), then measure.
        drop(
            DistributedCluster::spawn_on(&mapping, &tp, 3, SearchOptions::default(), transport)
                .unwrap(),
        );
        let before = thread_count();
        for _ in 0..10 {
            let mut cluster =
                DistributedCluster::spawn_on(&mapping, &tp, 3, SearchOptions::default(), transport)
                    .unwrap();
            cluster.heartbeat().unwrap();
        }
        let after = thread_count();
        // A leaking teardown would grow by 3 threads per cycle (30 here);
        // the slack of 4 absorbs unrelated test-harness threads coming and
        // going in parallel.
        assert!(
            after <= before + 4,
            "{transport:?}: thread count grew from {before} to {after} over 10 spawn/drop cycles"
        );
    }
}
