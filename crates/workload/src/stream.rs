//! Delta-stream scenarios: a base instance plus K update batches.
//!
//! The incremental exchange session (`tdx_core::IncrementalExchange`)
//! consumes source *streams*, not one-shot instances. This module splits
//! every workload family into `base + batches` such that the union of all
//! parts is **exactly** the monolithic workload — so an incremental replay
//! is directly comparable (and hom-equivalent) to a from-scratch chase of
//! the original generator output, which is what the
//! `c_chase/incremental/*` benchmarks and the equivalence suite exploit.

use crate::adversarial::nested_mapping;
use crate::employment::{EmploymentConfig, EmploymentWorkload};
use crate::random::{RandomConfig, RandomWorkload};
use crate::sparse::{clustered_instance, ClusteredConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use tdx_logic::{parse_egd, parse_schema, parse_tgd, RelId, SchemaMapping};
use tdx_storage::{Row, TemporalInstance};
use tdx_temporal::Interval;

/// How the stream distributes facts over its batches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchOrder {
    /// Batch facts are drawn uniformly at random from the whole timeline —
    /// the adversarial case for partition locality (every batch dirties
    /// most partitions).
    Uniform,
    /// Batches carry the latest facts (sorted by interval start) — the
    /// production-shaped case where updates arrive near the end of the
    /// timeline and dirty few partitions.
    TailLocal,
}

/// Knobs for splitting a workload into a delta stream.
#[derive(Clone, Debug)]
pub struct StreamConfig {
    /// Number of update batches after the base instance.
    pub batches: usize,
    /// Fraction of the total fact count each batch carries (the base gets
    /// the remainder; clamped so the base keeps at least one fact).
    pub batch_fraction: f64,
    /// Batch composition.
    pub order: BatchOrder,
    /// RNG seed for the uniform draw.
    pub seed: u64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            batches: 5,
            batch_fraction: 0.05,
            order: BatchOrder::Uniform,
            seed: 0x5eed,
        }
    }
}

/// A workload split into a base instance and K update batches.
pub struct DeltaStream {
    /// The schema mapping of the family.
    pub mapping: SchemaMapping,
    /// The base instance an incremental session is seeded with.
    pub base: TemporalInstance,
    /// The update batches, in replay order.
    pub batches: Vec<TemporalInstance>,
}

impl DeltaStream {
    /// The union of base and all batches — equals the monolithic workload
    /// instance the stream was split from.
    pub fn union(&self) -> TemporalInstance {
        let mut out = self.base.clone();
        for b in &self.batches {
            for (rel, fact) in b.iter_all() {
                out.insert(rel, Arc::clone(&fact.data), fact.interval);
            }
        }
        out
    }

    /// Total number of facts across base and batches.
    pub fn total_len(&self) -> usize {
        self.base.total_len() + self.batches.iter().map(|b| b.total_len()).sum::<usize>()
    }
}

/// Splits `full` into a [`DeltaStream`] according to `cfg`.
pub fn split_stream(
    mapping: SchemaMapping,
    full: &TemporalInstance,
    cfg: &StreamConfig,
) -> DeltaStream {
    let mut facts: Vec<(RelId, Row, Interval)> = full
        .iter_all()
        .map(|(rel, f)| (rel, Arc::clone(&f.data), f.interval))
        .collect();
    let total = facts.len();
    let per_batch = ((total as f64 * cfg.batch_fraction).ceil() as usize).max(1);
    let tail = (per_batch * cfg.batches).min(total.saturating_sub(1));
    match cfg.order {
        BatchOrder::Uniform => {
            // Fisher–Yates over the deterministic fact order.
            let mut rng = StdRng::seed_from_u64(cfg.seed);
            for i in (1..facts.len()).rev() {
                facts.swap(i, rng.gen_range(0..i + 1));
            }
        }
        BatchOrder::TailLocal => {
            facts.sort_by_key(|(_, _, iv)| (iv.start(), *iv));
        }
    }
    let schema = full.schema_arc();
    let build = |chunk: &[(RelId, Row, Interval)]| {
        let mut inst = TemporalInstance::new(Arc::clone(&schema));
        for (rel, data, iv) in chunk {
            inst.insert(*rel, Arc::clone(data), *iv);
        }
        inst
    };
    let split_at = total - tail;
    let base = build(&facts[..split_at]);
    let batches: Vec<TemporalInstance> = facts[split_at..]
        .chunks(per_batch.max(1))
        .map(build)
        .collect();
    DeltaStream {
        mapping,
        base,
        batches,
    }
}

/// An employment-family delta stream (the paper's running mapping).
pub fn employment_stream(w: &EmploymentConfig, cfg: &StreamConfig) -> DeltaStream {
    let full = EmploymentWorkload::generate(w);
    split_stream(full.mapping, &full.source, cfg)
}

/// A nested-interval (adversarial normalization) delta stream.
pub fn nested_stream(n: usize, cfg: &StreamConfig) -> DeltaStream {
    let (mapping, source) = nested_mapping(n);
    split_stream(mapping, &source, cfg)
}

/// A sparse/clustered delta stream: the clustered join instance under a
/// mapping that exchanges each cluster pair into an existential target row,
/// so incremental renormalization work stays confined to the clusters a
/// batch touches.
pub fn sparse_stream(c: &ClusteredConfig, cfg: &StreamConfig) -> DeltaStream {
    let mapping = SchemaMapping::new(
        parse_schema("R(k). S(k).").unwrap(),
        parse_schema("T(k, w).").unwrap(),
        vec![parse_tgd("R(k) & S(k) -> exists w . T(k, w)")
            .unwrap()
            .named("pair")],
        vec![parse_egd("T(k, w) & T(k, w2) -> w = w2")
            .unwrap()
            .named("wfd")],
    )
    .expect("valid sparse mapping");
    let (instance, _) = clustered_instance(c);
    // Rebuild over the mapping's own source schema object.
    let mut src = TemporalInstance::new(Arc::new(mapping.source().clone()));
    for (rel, fact) in instance.iter_all() {
        src.insert(rel, Arc::clone(&fact.data), fact.interval);
    }
    split_stream(mapping, &src, cfg)
}

/// A random-workload delta stream (for property tests).
pub fn random_stream(w: &RandomConfig, cfg: &StreamConfig) -> DeltaStream {
    let full = RandomWorkload::generate(w);
    split_stream(full.mapping, &full.source, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn fact_set(inst: &TemporalInstance) -> BTreeSet<String> {
        inst.iter_all()
            .map(|(rel, f)| format!("{rel:?}{:?}@{}", f.data, f.interval))
            .collect()
    }

    #[test]
    fn union_reconstructs_the_monolithic_workload() {
        let wcfg = EmploymentConfig {
            persons: 20,
            horizon: 30,
            seed: 42,
            ..EmploymentConfig::default()
        };
        let full = EmploymentWorkload::generate(&wcfg);
        for order in [BatchOrder::Uniform, BatchOrder::TailLocal] {
            let stream = employment_stream(
                &wcfg,
                &StreamConfig {
                    batches: 4,
                    batch_fraction: 0.05,
                    order,
                    ..StreamConfig::default()
                },
            );
            assert_eq!(stream.batches.len(), 4, "{order:?}");
            assert_eq!(fact_set(&stream.union()), fact_set(&full.source));
            assert_eq!(stream.total_len(), full.source.total_len());
            for b in &stream.batches {
                assert!(b.total_len() >= 1);
            }
        }
    }

    #[test]
    fn splitting_is_deterministic() {
        let cfg = StreamConfig::default();
        let wcfg = EmploymentConfig {
            persons: 10,
            ..EmploymentConfig::default()
        };
        let a = employment_stream(&wcfg, &cfg);
        let b = employment_stream(&wcfg, &cfg);
        assert_eq!(a.base, b.base);
        assert_eq!(a.batches.len(), b.batches.len());
        for (x, y) in a.batches.iter().zip(&b.batches) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn tail_local_batches_carry_the_latest_facts() {
        let stream = employment_stream(
            &EmploymentConfig {
                persons: 15,
                horizon: 40,
                seed: 7,
                ..EmploymentConfig::default()
            },
            &StreamConfig {
                batches: 3,
                batch_fraction: 0.1,
                order: BatchOrder::TailLocal,
                ..StreamConfig::default()
            },
        );
        let base_max = stream
            .base
            .iter_all()
            .map(|(_, f)| f.interval.start())
            .max()
            .unwrap();
        let batch_min = stream
            .batches
            .iter()
            .flat_map(|b| b.iter_all().map(|(_, f)| f.interval.start()))
            .min()
            .unwrap();
        // The split is sorted by start point: everything in the batches
        // starts at or after everything in the base.
        assert!(batch_min >= base_max);
    }

    #[test]
    fn nested_and_sparse_streams_split() {
        let s = nested_stream(
            12,
            &StreamConfig {
                batches: 3,
                batch_fraction: 0.1,
                ..StreamConfig::default()
            },
        );
        assert_eq!(s.batches.len(), 3);
        assert!(s.base.total_len() > 0);
        let sp = sparse_stream(
            &ClusteredConfig::default(),
            &StreamConfig {
                batches: 2,
                batch_fraction: 0.1,
                ..StreamConfig::default()
            },
        );
        assert_eq!(sp.batches.len(), 2);
        assert!(sp.mapping.st_tgds().len() == 1);
    }
}
