//! The abstract chase (paper Section 3).
//!
//! `chase(I_a, M) = ⟨chase(db₀, M), chase(db₁, M), …⟩`: the classical chase
//! applied to every snapshot independently, with fresh labeled nulls per
//! snapshot. On the epoch representation that means: chase each epoch's
//! snapshot once, and mark the fresh nulls as [`AValue::PerPoint`] families —
//! each time point of the epoch gets its own copy, which is exactly the
//! "distinct nulls across snapshots" requirement. Null bases are drawn from
//! one generator across epochs, so no base is reused between epochs.

use crate::abstract_view::{ASnapshot, AValue, AbstractInstance, Epoch};
use crate::chase::snapshot::{snapshot_chase, snapshot_chase_with};
use crate::error::{Result, TdxError};
use std::sync::Arc;
use tdx_logic::SchemaMapping;
use tdx_storage::{Instance, NullGen, SearchOptions, Value};

/// Converts a complete abstract snapshot into a storage instance.
fn to_instance(snap: &ASnapshot) -> Result<Instance> {
    let mut out = Instance::new(snap.schema_arc());
    for (rel, row) in snap.iter_all() {
        let vals: std::result::Result<Vec<Value>, TdxError> = row
            .iter()
            .map(|v| match v {
                AValue::Const(c) => Ok(Value::Const(*c)),
                other => Err(TdxError::Invalid(format!(
                    "abstract source instance must be complete, found null {other}"
                ))),
            })
            .collect();
        out.insert(rel, vals?.into());
    }
    Ok(out)
}

/// Converts a chase output snapshot back to the abstract view: fresh nulls
/// become per-point families.
fn to_asnapshot(db: &Instance, schema: Arc<tdx_logic::Schema>) -> ASnapshot {
    let mut snap = ASnapshot::new(schema);
    for (rel, row) in db.iter_all() {
        snap.insert(
            rel,
            row.iter()
                .map(|v| match v {
                    Value::Const(c) => AValue::Const(*c),
                    Value::Null(b) => AValue::PerPoint(*b),
                })
                .collect(),
        );
    }
    snap
}

/// Chases every snapshot of `ia` (paper Section 3). By Proposition 4 a
/// successful result is a universal solution; a failure means no solution
/// exists.
pub fn abstract_chase(ia: &AbstractInstance, mapping: &SchemaMapping) -> Result<AbstractInstance> {
    abstract_chase_with(ia, mapping, SearchOptions::default())
}

/// [`abstract_chase`] with explicit matcher options, so the per-snapshot
/// chases inherit the engine choice (indexed vs full-scan) end to end.
pub fn abstract_chase_with(
    ia: &AbstractInstance,
    mapping: &SchemaMapping,
    options: SearchOptions,
) -> Result<AbstractInstance> {
    let target_schema = Arc::new(mapping.target().clone());
    let mut nulls = NullGen::new();
    let mut epochs = Vec::with_capacity(ia.epochs().len());
    for epoch in ia.epochs() {
        let src = to_instance(&epoch.snapshot)?;
        let chased =
            snapshot_chase_with(&src, mapping, &mut nulls, options).map_err(|e| match e {
                TdxError::ChaseFailure {
                    dependency,
                    left,
                    right,
                    ..
                } => TdxError::ChaseFailure {
                    dependency,
                    left,
                    right,
                    interval: Some(epoch.interval),
                },
                other => other,
            })?;
        epochs.push(Epoch {
            interval: epoch.interval,
            snapshot: to_asnapshot(&chased, Arc::clone(&target_schema)),
        });
    }
    AbstractInstance::from_epochs(target_schema, epochs)
}

/// [`abstract_chase`] with epoch-level parallelism.
///
/// The paper's definition makes snapshots *independent*: "the chase
/// procedure [is applied] to each snapshot independently" (Section 3) — so
/// epochs can be chased on separate threads. Each epoch draws its fresh
/// nulls from a disjoint id range (epoch `i` starts at `i · 2³²`), which
/// realizes the requirement that nulls differ across snapshots without any
/// cross-thread coordination. The result is *identical* to the sequential
/// chase up to null renaming (and byte-identical per epoch structure).
///
/// `threads = 0` resolves through the same knob as the concrete engine —
/// `TDX_CHASE_THREADS`, then the machine — via
/// [`worker_threads`](crate::chase::worker_threads); see also
/// [`abstract_chase_parallel_opts`] to drive it from [`ChaseOptions`].
pub fn abstract_chase_parallel(
    ia: &AbstractInstance,
    mapping: &SchemaMapping,
    threads: usize,
) -> Result<AbstractInstance> {
    let threads = crate::chase::worker_threads(threads);
    let target_schema = Arc::new(mapping.target().clone());
    let n = ia.epochs().len();
    if threads == 1 || n <= 1 {
        return abstract_chase(ia, mapping);
    }
    let mut slots: Vec<Option<Result<Epoch>>> = Vec::new();
    slots.resize_with(n, || None);
    let slots = std::sync::Mutex::new(slots);
    let next = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads.min(n) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let epoch = &ia.epochs()[i];
                // Disjoint null ranges per epoch replace the shared
                // generator; 2³² ids per epoch is far beyond any chase.
                let mut nulls = NullGen::starting_at((i as u64) << 32);
                let outcome = to_instance(&epoch.snapshot).and_then(|src| {
                    snapshot_chase(&src, mapping, &mut nulls).map_err(|e| match e {
                        TdxError::ChaseFailure {
                            dependency,
                            left,
                            right,
                            ..
                        } => TdxError::ChaseFailure {
                            dependency,
                            left,
                            right,
                            interval: Some(epoch.interval),
                        },
                        other => other,
                    })
                });
                let entry = outcome.map(|chased| Epoch {
                    interval: epoch.interval,
                    snapshot: to_asnapshot(&chased, Arc::clone(&target_schema)),
                });
                slots.lock().expect("slot lock")[i] = Some(entry);
            });
        }
    });
    let slots = slots.into_inner().expect("threads joined");
    let mut epochs = Vec::with_capacity(n);
    for slot in slots {
        epochs.push(slot.expect("every epoch chased")?);
    }
    AbstractInstance::from_epochs(target_schema, epochs)
}

/// [`abstract_chase_parallel`] configured from [`ChaseOptions`]: the worker
/// count comes from the engine choice
/// ([`ChaseEngine::PartitionedParallel`](crate::chase::concrete::ChaseEngine)'s
/// `threads`, else the `TDX_CHASE_THREADS`/machine default) — the one knob
/// shared with the concrete chase.
pub fn abstract_chase_parallel_opts(
    ia: &AbstractInstance,
    mapping: &SchemaMapping,
    opts: &crate::chase::concrete::ChaseOptions,
) -> Result<AbstractInstance> {
    let requested = match opts.engine {
        crate::chase::concrete::ChaseEngine::PartitionedParallel { threads } => threads,
        _ => 0,
    };
    abstract_chase_parallel(ia, mapping, requested)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abstract_view::AbstractInstanceBuilder;
    use tdx_logic::{parse_egd, parse_schema, parse_tgd};
    use tdx_temporal::Interval;

    fn iv(s: u64, e: u64) -> Interval {
        Interval::new(s, e)
    }

    fn paper_mapping() -> SchemaMapping {
        SchemaMapping::new(
            parse_schema("E(name, company). S(name, salary).").unwrap(),
            parse_schema("Emp(name, company, salary).").unwrap(),
            vec![
                parse_tgd("E(n,c) -> Emp(n,c,s)").unwrap(),
                parse_tgd("E(n,c) & S(n,s) -> Emp(n,c,s)").unwrap(),
            ],
            vec![parse_egd("Emp(n,c,s) & Emp(n,c,s2) -> s = s2").unwrap()],
        )
        .unwrap()
    }

    /// Figure 1 as an abstract instance.
    fn figure1(mapping: &SchemaMapping) -> AbstractInstance {
        let schema = Arc::new(mapping.source().clone());
        let mut b = AbstractInstanceBuilder::new(schema);
        b.add(
            "E",
            vec![AValue::str("Ada"), AValue::str("IBM")],
            iv(2012, 2014),
        );
        b.add(
            "E",
            vec![AValue::str("Ada"), AValue::str("Google")],
            Interval::from(2014),
        );
        b.add(
            "E",
            vec![AValue::str("Bob"), AValue::str("IBM")],
            iv(2013, 2018),
        );
        b.add(
            "S",
            vec![AValue::str("Ada"), AValue::str("18k")],
            Interval::from(2013),
        );
        b.add(
            "S",
            vec![AValue::str("Bob"), AValue::str("13k")],
            Interval::from(2015),
        );
        b.build()
    }

    #[test]
    fn figure3_shape() {
        // The chase of Figure 1 snapshot-by-snapshot gives Figure 3.
        let mapping = paper_mapping();
        let ja = abstract_chase(&figure1(&mapping), &mapping).unwrap();
        // 2012: {Emp(Ada, IBM, N)} with a null salary.
        let s2012 = ja.snapshot_at(2012);
        assert_eq!(s2012.total_len(), 1);
        assert!(!s2012.is_complete());
        // 2013: {Emp(Ada, IBM, 18k), Emp(Bob, IBM, N')}.
        let s2013 = ja.snapshot_at(2013);
        assert_eq!(s2013.total_len(), 2);
        let r = s2013.render();
        assert!(r.contains("Emp(Ada, IBM, 18k)"), "got {r}");
        assert!(r.contains("Emp(Bob, IBM, N"), "got {r}");
        // 2015 onward until 2018: all complete.
        let s2015 = ja.snapshot_at(2015);
        assert_eq!(s2015.total_len(), 2);
        assert!(s2015.is_complete());
        // 2018: {Emp(Ada, Google, 18k)}.
        let s2018 = ja.snapshot_at(2018);
        assert_eq!(s2018.render(), "{Emp(Ada, Google, 18k)}");
        // Before 2012: empty.
        assert!(ja.snapshot_at(0).is_empty());
    }

    #[test]
    fn nulls_differ_across_epochs() {
        let mapping = paper_mapping();
        let ja = abstract_chase(&figure1(&mapping), &mapping).unwrap();
        // The null in [2012,2013) (Ada's unknown salary) and the null in
        // [2013,2014) (Bob's) must have different bases, and both are
        // per-point families.
        let (pp1, rg1) = ja.snapshot_at(2012).null_bases();
        let (pp2, rg2) = ja.snapshot_at(2013).null_bases();
        assert!(rg1.is_empty() && rg2.is_empty());
        assert_eq!(pp1.len(), 1);
        assert_eq!(pp2.len(), 1);
        assert!(pp1.is_disjoint(&pp2));
    }

    #[test]
    fn failure_reports_epoch_interval() {
        let mapping = paper_mapping();
        let schema = Arc::new(mapping.source().clone());
        let mut b = AbstractInstanceBuilder::new(schema);
        b.add("E", vec![AValue::str("Ada"), AValue::str("IBM")], iv(5, 9));
        b.add("S", vec![AValue::str("Ada"), AValue::str("18k")], iv(5, 9));
        b.add("S", vec![AValue::str("Ada"), AValue::str("20k")], iv(7, 8));
        let ia = b.build();
        let err = abstract_chase(&ia, &mapping).unwrap_err();
        match err {
            TdxError::ChaseFailure { interval, .. } => {
                assert_eq!(interval, Some(iv(7, 8)));
            }
            other => panic!("expected failure, got {other:?}"),
        }
    }

    #[test]
    fn parallel_chase_is_equivalent_to_sequential() {
        let mapping = paper_mapping();
        let ia = figure1(&mapping);
        let sequential = abstract_chase(&ia, &mapping).unwrap();
        for threads in [1usize, 2, 4, 16] {
            let parallel = abstract_chase_parallel(&ia, &mapping, threads).unwrap();
            assert!(
                crate::hom::hom_equivalent(&sequential, &parallel),
                "threads = {threads}"
            );
            assert_eq!(sequential.epochs().len(), parallel.epochs().len());
        }
    }

    #[test]
    fn options_drive_the_parallel_worker_knob() {
        use crate::chase::concrete::ChaseOptions;
        let mapping = paper_mapping();
        let ia = figure1(&mapping);
        let sequential = abstract_chase(&ia, &mapping).unwrap();
        // The engine's thread count flows through; 0 resolves to the
        // env/machine default — both must chase correctly.
        for opts in [
            ChaseOptions::partitioned_parallel(3),
            ChaseOptions::partitioned_parallel(0),
            ChaseOptions::default(),
        ] {
            let parallel = abstract_chase_parallel_opts(&ia, &mapping, &opts).unwrap();
            assert!(crate::hom::hom_equivalent(&sequential, &parallel));
        }
    }

    #[test]
    fn parallel_chase_propagates_failures() {
        let mapping = paper_mapping();
        let schema = Arc::new(mapping.source().clone());
        let mut b = AbstractInstanceBuilder::new(schema);
        b.add("E", vec![AValue::str("Ada"), AValue::str("IBM")], iv(5, 9));
        b.add("S", vec![AValue::str("Ada"), AValue::str("18k")], iv(5, 9));
        b.add("S", vec![AValue::str("Ada"), AValue::str("20k")], iv(7, 8));
        let ia = b.build();
        let err = abstract_chase_parallel(&ia, &mapping, 4).unwrap_err();
        assert!(matches!(
            err,
            TdxError::ChaseFailure {
                interval: Some(i),
                ..
            } if i == iv(7, 8)
        ));
    }

    #[test]
    fn incomplete_source_rejected() {
        let mapping = paper_mapping();
        let schema = Arc::new(mapping.source().clone());
        let mut b = AbstractInstanceBuilder::new(schema);
        b.add(
            "E",
            vec![AValue::str("Ada"), AValue::PerPoint(tdx_storage::NullId(0))],
            iv(0, 2),
        );
        let ia = b.build();
        assert!(matches!(
            abstract_chase(&ia, &mapping),
            Err(TdxError::Invalid(_))
        ));
    }
}
