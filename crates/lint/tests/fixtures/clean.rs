//! Fixture: deterministic, panic-free code — zero findings, even when
//! scanned as a fault path.

use std::collections::BTreeMap;

fn tally(pairs: &[(u32, u32)]) -> BTreeMap<u32, u32> {
    let mut out = BTreeMap::new();
    for &(k, v) in pairs {
        *out.entry(k).or_insert(0) += v;
    }
    out
}

fn first_chunk(bytes: &[u8]) -> Option<[u8; 4]> {
    bytes.split_first_chunk::<4>().map(|(head, _)| *head)
}
