//! Schemas, dependencies and queries for temporal data exchange.
//!
//! This crate provides the logical language of the paper (Section 2):
//!
//! * [`Schema`] — relational schemas `R(A₁, …, Aₙ)`; the corresponding
//!   concrete schema `R⁺(A₁, …, Aₙ, T)` is implicit (every relation gains a
//!   temporal attribute when stored in a temporal instance);
//! * [`Tgd`] — source-to-target tuple generating dependencies
//!   `∀x̄ φ(x̄) → ∃ȳ ψ(x̄, ȳ)`;
//! * [`Egd`] — equality generating dependencies `∀x̄ φ(x̄) → x₁ = x₂`;
//! * [`SchemaMapping`] — a validated data exchange setting
//!   `M = (R_S, R_T, Σ_st, Σ_eg)`;
//! * [`ConjunctiveQuery`] / [`UnionQuery`] — (unions of) conjunctive queries
//!   over the target schema;
//! * [`parser`] — a small text syntax for all of the above.
//!
//! Dependencies and queries are written **non-temporally**, exactly as in the
//! paper: the universally quantified interval variable `t` that turns `φ(x̄)`
//! into `φ⁺(x̄, t)` is added mechanically by the evaluation layers, never
//! spelled out in the AST.

#![warn(missing_docs)]

pub mod atom;
pub mod constant;
pub mod dependency;
pub mod parser;
pub mod query;
pub mod schema;
pub mod symbol;
pub mod temporal_dependency;
pub mod term;

pub use atom::Atom;
pub use constant::Constant;
pub use dependency::{Dependency, Egd, SchemaMapping, Tgd};
pub use parser::{
    parse_egd, parse_fact, parse_facts, parse_mapping, parse_query, parse_schema,
    parse_temporal_tgd, parse_tgd, parse_union_query, FactTerm, ParseError, ParsedFact,
};
pub use query::{ConjunctiveQuery, UnionQuery};
pub use schema::{RelId, RelationSchema, Schema};
pub use symbol::Symbol;
pub use temporal_dependency::{Modality, TemporalTgd};
pub use term::{Term, Var};
