//! Concrete temporal instances.
//!
//! A [`TemporalInstance`] stores facts of the concrete schema `R⁺`: every
//! tuple carries a time interval (paper Section 2). Nulls inside the tuple
//! are interval-annotated implicitly — the annotation is the fact's interval.
//!
//! Storage, indexing and the generation log live in [`FactStore`]; this type
//! layers the paper-level operations on top (snapshots, coalescing,
//! value rewriting, semantic equality).

use crate::fact_store::{FactStore, Generation};
use crate::value::{NullId, Row, Value};
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;
use tdx_logic::{RelId, Schema};
use tdx_temporal::{coalesce_intervals, Breakpoints, Interval, TimePoint};

use crate::instance::Instance;

/// One concrete fact: data attribute values plus the temporal attribute.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct TemporalFact {
    /// The data attribute values (`f[D]` in the paper).
    pub data: Row,
    /// The time interval (`f[T]` in the paper).
    pub interval: Interval,
}

impl fmt::Display for TemporalFact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let vals: Vec<String> = self.data.iter().map(|v| v.to_string()).collect();
        write!(f, "({}, {})", vals.join(", "), self.interval)
    }
}

impl fmt::Debug for TemporalFact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// A concrete temporal database instance over the implicit schema `R⁺`,
/// backed by an indexed [`FactStore`].
#[derive(Clone)]
pub struct TemporalInstance {
    store: FactStore,
}

impl TemporalInstance {
    /// An empty instance over `schema` (data attributes only; the temporal
    /// attribute is implicit).
    pub fn new(schema: Arc<Schema>) -> TemporalInstance {
        TemporalInstance {
            store: FactStore::new(schema),
        }
    }

    /// An empty instance over an owned schema.
    pub fn with_schema(schema: Schema) -> TemporalInstance {
        TemporalInstance::new(Arc::new(schema))
    }

    /// The instance's (data) schema.
    pub fn schema(&self) -> &Schema {
        self.store.schema()
    }

    /// Shared handle to the schema.
    pub fn schema_arc(&self) -> Arc<Schema> {
        self.store.schema_arc()
    }

    /// The backing fact store (indexes, generation log).
    pub fn store(&self) -> &FactStore {
        &self.store
    }

    /// Mutable access to the backing fact store.
    pub fn store_mut(&mut self) -> &mut FactStore {
        &mut self.store
    }

    /// Inserts a fact; returns `false` if the identical fact (same data and
    /// same interval) was already present.
    pub fn insert(&mut self, rel: RelId, data: Row, interval: Interval) -> bool {
        self.store.insert(rel, data, interval)
    }

    /// Inserts by relation name. Panics on an unknown relation.
    pub fn insert_values<I: IntoIterator<Item = Value>>(
        &mut self,
        rel: &str,
        vals: I,
        interval: Interval,
    ) -> bool {
        self.store.insert_values(rel, vals, interval)
    }

    /// Convenience for string-constant facts: `insert_strs("E", &["Ada", "IBM"], iv)`.
    pub fn insert_strs(&mut self, rel: &str, vals: &[&str], interval: Interval) -> bool {
        self.insert_values(rel, vals.iter().map(|s| Value::str(s)), interval)
    }

    /// Whether the exact fact is present.
    pub fn contains(&self, rel: RelId, data: &Row, interval: Interval) -> bool {
        self.store.contains(rel, data, interval)
    }

    /// The facts of one relation, in insertion order.
    pub fn facts(&self, rel: RelId) -> &[TemporalFact] {
        self.store.facts(rel)
    }

    /// Number of facts in one relation.
    pub fn len(&self, rel: RelId) -> usize {
        self.store.len(rel)
    }

    /// Total number of facts.
    pub fn total_len(&self) -> usize {
        self.store.total_len()
    }

    /// Whether the whole instance is empty.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Iterates `(rel, fact)` over the whole instance.
    pub fn iter_all(&self) -> impl Iterator<Item = (RelId, &TemporalFact)> {
        self.store.iter_all()
    }

    /// Seals the current contents as a generation (see
    /// [`FactStore::mark`]). Facts inserted afterwards form the delta that
    /// [`TemporalInstance::find_matches_delta`](crate::matcher) joins
    /// against.
    pub fn mark_generation(&mut self) -> Generation {
        self.store.mark()
    }

    /// The facts of `rel` added since `gen` was sealed.
    pub fn facts_since(&self, rel: RelId, gen: Generation) -> &[TemporalFact] {
        self.store.facts_since(rel, gen)
    }

    /// Whether any relation gained facts since `gen` was sealed.
    pub fn has_delta_since(&self, gen: Generation) -> bool {
        self.store.has_delta_since(gen)
    }

    /// The set of null bases occurring anywhere in the instance.
    pub fn nulls(&self) -> BTreeSet<NullId> {
        let mut out = BTreeSet::new();
        for (_, fact) in self.iter_all() {
            for v in fact.data.iter() {
                if let Value::Null(n) = v {
                    out.insert(*n);
                }
            }
        }
        out
    }

    /// Whether the instance contains no nulls (is *complete*).
    pub fn is_complete(&self) -> bool {
        self.iter_all()
            .all(|(_, f)| f.data.iter().all(|v| !v.is_null()))
    }

    /// All distinct start/end points of the instance's facts, read from the
    /// store's incrementally maintained endpoint sets.
    pub fn endpoints(&self) -> Breakpoints {
        self.store.endpoints()
    }

    /// The snapshot `db_ℓ` of the represented abstract instance at time `t`:
    /// all facts whose interval contains `t`, with their data values
    /// unchanged (a null base `N` stands for the labeled null `N_t`).
    pub fn project_at(&self, t: TimePoint) -> Instance {
        let mut out = Instance::new(self.schema_arc());
        for (rel, fact) in self.iter_all() {
            if fact.interval.contains(t) {
                out.insert(rel, Arc::clone(&fact.data));
            }
        }
        out
    }

    /// The coalesced form (paper Section 2): facts with identical data
    /// values get their intervals merged into maximal disjoint,
    /// non-adjacent intervals. Sound for nulls too, because fragments of one
    /// annotated null share their base and `⟦·⟧` only depends on
    /// (base, time point).
    pub fn coalesced(&self) -> TemporalInstance {
        let mut out = TemporalInstance::new(self.schema_arc());
        for r in 0..self.schema().len() {
            let rel = RelId(r as u32);
            let groups = coalesce_intervals(
                self.facts(rel)
                    .iter()
                    .map(|f| (Arc::clone(&f.data), f.interval)),
            );
            for (data, set) in groups {
                for iv in set.intervals() {
                    out.insert(rel, Arc::clone(&data), *iv);
                }
            }
        }
        out
    }

    /// Whether every relation is already coalesced.
    pub fn is_coalesced(&self) -> bool {
        (0..self.schema().len()).all(|r| {
            tdx_temporal::coalesce::is_coalesced(
                self.facts(RelId(r as u32))
                    .iter()
                    .map(|f| (Arc::clone(&f.data), f.interval)),
            )
        })
    }

    /// Semantic equality: do the two instances represent the same abstract
    /// instance? Compared on coalesced forms (null bases must match
    /// exactly; use the core crate's homomorphism tools for
    /// equivalence up to null renaming).
    pub fn eq_coalesced(&self, other: &TemporalInstance) -> bool {
        let a = self.coalesced();
        let b = other.coalesced();
        if a.schema() != b.schema() {
            return false;
        }
        a.store.same_facts(&b.store)
    }

    /// A new instance with every value mapped through `f`. The interval of
    /// each fact is preserved; facts that become identical are merged.
    pub fn map_values(&self, mut f: impl FnMut(&Value, Interval) -> Value) -> TemporalInstance {
        let mut out = TemporalInstance::new(self.schema_arc());
        for (rel, fact) in self.iter_all() {
            let new_data: Row = fact.data.iter().map(|v| f(v, fact.interval)).collect();
            out.insert(rel, new_data, fact.interval);
        }
        out
    }
}

impl PartialEq for TemporalInstance {
    /// Exact set equality of facts (see [`TemporalInstance::eq_coalesced`]
    /// for equality up to coalescing).
    fn eq(&self, other: &Self) -> bool {
        if self.schema() != other.schema() {
            return false;
        }
        self.store.same_facts(&other.store)
    }
}

impl Eq for TemporalInstance {}

impl fmt::Display for TemporalInstance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        crate::display::fmt_temporal_instance(self, f)
    }
}

impl fmt::Debug for TemporalInstance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdx_logic::RelationSchema;

    fn iv(s: u64, e: u64) -> Interval {
        Interval::new(s, e)
    }

    fn schema() -> Arc<Schema> {
        Arc::new(
            Schema::new(vec![
                RelationSchema::new("E", &["name", "company"]),
                RelationSchema::new("S", &["name", "salary"]),
            ])
            .unwrap(),
        )
    }

    /// The paper's Figure 4 source instance.
    fn figure4() -> TemporalInstance {
        let mut i = TemporalInstance::new(schema());
        i.insert_strs("E", &["Ada", "IBM"], iv(2012, 2014));
        i.insert_strs("E", &["Ada", "Google"], Interval::from(2014));
        i.insert_strs("E", &["Bob", "IBM"], iv(2013, 2018));
        i.insert_strs("S", &["Ada", "18k"], Interval::from(2013));
        i.insert_strs("S", &["Bob", "13k"], Interval::from(2015));
        i
    }

    #[test]
    fn insert_dedupes_exact_facts() {
        let mut i = figure4();
        assert_eq!(i.total_len(), 5);
        assert!(!i.insert_strs("E", &["Ada", "IBM"], iv(2012, 2014)));
        // Same data, different interval is a different fact.
        assert!(i.insert_strs("E", &["Ada", "IBM"], iv(2020, 2021)));
        assert_eq!(i.total_len(), 6);
    }

    #[test]
    fn project_at_matches_figure1() {
        let i = figure4();
        // 2013 snapshot: E(Ada,IBM), S(Ada,18k), E(Bob,IBM)  (Figure 1)
        let db2013 = i.project_at(2013);
        assert_eq!(
            db2013.to_string(),
            "{E(Ada, IBM), E(Bob, IBM), S(Ada, 18k)}"
        );
        // 2018 snapshot: E(Ada,Google), S(Ada,18k), S(Bob,13k)
        let db2018 = i.project_at(2018);
        assert_eq!(
            db2018.to_string(),
            "{E(Ada, Google), S(Ada, 18k), S(Bob, 13k)}"
        );
        // Before anything: empty.
        assert!(i.project_at(2000).is_empty());
    }

    #[test]
    fn endpoints_collects_all() {
        let bps = figure4().endpoints();
        assert_eq!(bps.points(), &[2012, 2013, 2014, 2015, 2018]);
    }

    #[test]
    fn coalesce_round_trip() {
        let mut i = TemporalInstance::new(schema());
        i.insert_strs("E", &["Ada", "IBM"], iv(2012, 2013));
        i.insert_strs("E", &["Ada", "IBM"], iv(2013, 2014));
        i.insert_strs("E", &["Bob", "IBM"], iv(2013, 2018));
        assert!(!i.is_coalesced());
        let c = i.coalesced();
        assert!(c.is_coalesced());
        assert_eq!(c.total_len(), 2);
        assert!(c.contains(
            RelId(0),
            &crate::value::row([Value::str("Ada"), Value::str("IBM")]),
            iv(2012, 2014)
        ));
        assert!(i.eq_coalesced(&c));
        assert!(figure4().is_coalesced());
    }

    #[test]
    fn generation_marks_surface_deltas() {
        let mut i = figure4();
        let gen = i.mark_generation();
        assert!(!i.has_delta_since(gen));
        i.insert_strs("E", &["Cyd", "Intel"], iv(0, 1));
        assert!(i.has_delta_since(gen));
        let delta: Vec<String> = i
            .facts_since(RelId(0), gen)
            .iter()
            .map(|f| f.data[0].to_string())
            .collect();
        assert_eq!(delta, vec!["Cyd"]);
        assert!(i.facts_since(RelId(1), gen).is_empty());
    }

    #[test]
    fn col_index_on_temporal() {
        let i = figure4();
        let e = RelId(0);
        assert_eq!(i.store().col_count(e, 0, &Value::str("Ada")), 2);
        assert_eq!(i.store().col_count(e, 0, &Value::str("Bob")), 1);
    }

    #[test]
    fn interval_probes_via_store() {
        let i = figure4();
        let e = RelId(0);
        assert_eq!(i.store().exact_count(e, &iv(2012, 2014)), 1);
        assert_eq!(i.store().exact_count(e, &iv(1999, 2000)), 0);
        let mut hits = Vec::new();
        i.store().for_exact(e, &iv(2012, 2014), &mut |id| {
            hits.push(id);
            true
        });
        assert_eq!(hits, vec![0]);
        // Overlap probe: everything live in 2013.
        assert_eq!(i.store().overlap_count(e, &Interval::point(2013)), 2);
    }

    #[test]
    fn map_values_preserves_intervals() {
        let mut i = TemporalInstance::new(schema());
        i.insert_values("E", [Value::str("Ada"), Value::Null(NullId(0))], iv(0, 5));
        let out = i.map_values(|v, interval| {
            assert_eq!(interval, iv(0, 5));
            match v {
                Value::Null(_) => Value::str("IBM"),
                other => *other,
            }
        });
        assert!(out.contains(
            RelId(0),
            &crate::value::row([Value::str("Ada"), Value::str("IBM")]),
            iv(0, 5)
        ));
    }

    #[test]
    fn clone_and_eq() {
        let i = figure4();
        let j = i.clone();
        assert_eq!(i, j);
        let mut k = j.clone();
        k.insert_strs("E", &["Cyd", "Intel"], iv(0, 1));
        assert_ne!(i, k);
    }
}
