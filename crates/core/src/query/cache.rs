//! The query service: MVCC published versions plus plan and
//! result-fragment caches.
//!
//! A [`QueryService`] sits beside an incremental-exchange writer. After
//! every committed batch the writer **publishes** the new target instance
//! together with the set of dirty timeline partitions; readers take a
//! [`QuerySnapshot`] (an `Arc` clone of the current published version) and
//! evaluate against it. Published versions are immutable, so readers never
//! block the writer and a reader mid-evaluation keeps a consistent view
//! while newer versions land.
//!
//! Two caches ride on the version stream, both keyed by the query's
//! fingerprint:
//!
//! * **plans** — compiled once per (query, epoch); join orders only depend
//!   on statistics, so a plan stays valid until the partition geometry
//!   changes;
//! * **result fragments** — the answer clipped to one timeline-partition
//!   range, stamped with the version it was computed at. A fragment is
//!   valid for a snapshot `S` iff `frag.version ≤ S.version` and
//!   `frag.version ≥ S.last_dirty[p]` — i.e. partition `p` has not been
//!   dirtied since the fragment was computed. Evaluation reuses valid
//!   fragments, recomputes the rest against the snapshot, and merges
//!   (interval sets coalesce across partition boundaries, so the union is
//!   byte-identical to a full evaluation).
//!
//! Repartitioning (or a full re-chase, which dirties everything and may
//! recoarsen) bumps the **epoch**, which invalidates all plans and
//! fragments wholesale — the partition ranges the fragments were clipped
//! to no longer exist.
//!
//! Fragments are computed *outside* the service lock: the lock is held
//! only to snapshot state, fetch cached entries, and install results
//! (guarded by version/epoch checks so stale writers never clobber newer
//! entries). This module is on tdx-lint's fault-path list: a panicking
//! reader would poison the shared lock, so nothing here panics and lock
//! poisoning is absorbed.

use crate::error::Result;
use crate::query::compiled::CompiledQuery;
use crate::query::plan::{self, UnionPlan};
use crate::query::TemporalAnswers;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex, MutexGuard};
use tdx_logic::UnionQuery;
use tdx_storage::fxhash::{FxHashMap, FxHasher};
use tdx_storage::{StoreSnapshot, TemporalInstance};
use tdx_temporal::TimelinePartition;

/// One immutable published version of the query target.
pub struct TargetVersion {
    snapshot: StoreSnapshot,
    version: u64,
    epoch: u64,
    partition: TimelinePartition,
    /// Per partition: the version that last dirtied it.
    last_dirty: Vec<u64>,
    /// Per partition: a commutative content fingerprint of the facts
    /// overlapping its range (the [`DirtySet::Diff`] comparison input).
    fingerprints: Vec<u64>,
}

impl TargetVersion {
    /// The watermark snapshot of this version's instance.
    pub fn snapshot(&self) -> &StoreSnapshot {
        &self.snapshot
    }

    /// The published instance.
    pub fn instance(&self) -> &TemporalInstance {
        self.snapshot.instance()
    }

    /// Monotone publish counter.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The timeline partition fragments are clipped to.
    pub fn partition(&self) -> &TimelinePartition {
        &self.partition
    }
}

/// A reader's handle on one published version. Cloning is an `Arc` clone;
/// the version stays alive (and consistent) for as long as any handle
/// does, no matter how many newer versions the writer publishes.
#[derive(Clone)]
pub struct QuerySnapshot {
    v: Arc<TargetVersion>,
}

impl QuerySnapshot {
    /// The pinned version.
    pub fn version(&self) -> &TargetVersion {
        &self.v
    }
}

/// Which timeline partitions a publish dirtied.
#[derive(Clone, Copy, Debug)]
pub enum DirtySet<'a> {
    /// Everything changed (full re-chase, rollback, recovery).
    All,
    /// Only these partition indices changed. The caller vouches for
    /// completeness: a fact change in an unlisted partition's range would
    /// leave stale fragments behind.
    Parts(&'a [usize]),
    /// Let the service find the changes itself by diffing per-partition
    /// content fingerprints against the previous version. Exact w.r.t.
    /// fragment validity — a fragment over range `B_p` depends precisely
    /// on the facts overlapping `B_p` — and robust against writers whose
    /// own dirty tracking is coarser than fact identity (interval-spanning
    /// facts, value rewrites of settled facts). This is what the
    /// incremental-exchange hook uses.
    Diff,
}

/// Per-partition content fingerprints: each fact's hash is folded (by
/// wrapping addition, so fact order is irrelevant) into every partition
/// whose range its interval overlaps — exactly the partitions whose
/// clipped fragments the fact can influence.
fn partition_fingerprints(inst: &TemporalInstance, partition: &TimelinePartition) -> Vec<u64> {
    let mut fps = vec![0u64; partition.len()];
    for (rel, fact) in inst.iter_all() {
        let mut h = FxHasher::default();
        (rel.0, &fact.data, fact.interval).hash(&mut h);
        let fh = h.finish();
        let (lo, hi) = partition.parts_overlapping(&fact.interval);
        for p in lo..=hi.min(fps.len().saturating_sub(1)) {
            fps[p] = fps[p].wrapping_add(fh);
        }
    }
    fps
}

/// Cache effectiveness counters (all monotone).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Versions published.
    pub publishes: u64,
    /// Queries evaluated through the service.
    pub evals: u64,
    /// Plan-cache misses (a compile happened).
    pub plans_compiled: u64,
    /// Result fragments served from cache.
    pub fragments_reused: u64,
    /// Result fragments recomputed.
    pub fragments_recomputed: u64,
}

struct PlanEntry {
    epoch: u64,
    plan: Arc<UnionPlan>,
}

#[derive(Clone)]
struct FragPart {
    /// Version whose snapshot the fragment was computed against.
    version: u64,
    answers: Arc<TemporalAnswers>,
}

struct FragEntry {
    epoch: u64,
    parts: Vec<Option<FragPart>>,
}

struct ServiceState {
    current: Arc<TargetVersion>,
    plans: FxHashMap<u64, PlanEntry>,
    frags: FxHashMap<u64, FragEntry>,
    stats: CacheStats,
}

/// Concurrent query front-end over a stream of published target versions.
pub struct QueryService {
    state: Mutex<ServiceState>,
}

impl QueryService {
    /// A service whose first published version is `initial`, partitioned
    /// by `partition` (every partition starts dirty at version 0).
    pub fn new(initial: TemporalInstance, partition: TimelinePartition) -> QueryService {
        let last_dirty = vec![0; partition.len()];
        let fingerprints = partition_fingerprints(&initial, &partition);
        let current = Arc::new(TargetVersion {
            snapshot: StoreSnapshot::latest(Arc::new(initial)),
            version: 0,
            epoch: 0,
            partition,
            last_dirty,
            fingerprints,
        });
        QueryService {
            state: Mutex::new(ServiceState {
                current,
                plans: FxHashMap::default(),
                frags: FxHashMap::default(),
                stats: CacheStats::default(),
            }),
        }
    }

    fn lock(&self) -> MutexGuard<'_, ServiceState> {
        // A poisoned lock means a reader panicked; the state is still
        // structurally sound (worst case: a stale cache entry, guarded by
        // version checks), so absorb the poison instead of propagating it.
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Publishes a new target version. `dirty` names the partitions the
    /// batch touched (in `partition`'s terms), or [`DirtySet::Diff`] to
    /// have the service derive them by fingerprint comparison. A partition
    /// change bumps the epoch and invalidates all cached plans and
    /// fragments.
    pub fn publish(
        &self,
        instance: TemporalInstance,
        partition: &TimelinePartition,
        dirty: DirtySet<'_>,
    ) {
        let fingerprints = partition_fingerprints(&instance, partition);
        let mut st = self.lock();
        let prev = Arc::clone(&st.current);
        let version = prev.version + 1;
        let same_geometry = *partition == prev.partition;
        let epoch = if same_geometry {
            prev.epoch
        } else {
            prev.epoch + 1
        };
        let mut last_dirty = if same_geometry {
            prev.last_dirty.clone()
        } else {
            vec![version; partition.len()]
        };
        match dirty {
            DirtySet::All => last_dirty.fill(version),
            DirtySet::Parts(ps) => {
                for &p in ps {
                    if let Some(d) = last_dirty.get_mut(p) {
                        *d = version;
                    }
                }
            }
            DirtySet::Diff => {
                // Geometry changes are already covered by the epoch bump;
                // with stable geometry a fragment over range p can only go
                // stale if the facts overlapping p changed, which is
                // exactly what the fingerprint tracks.
                for (p, d) in last_dirty.iter_mut().enumerate() {
                    if !same_geometry || fingerprints.get(p) != prev.fingerprints.get(p) {
                        *d = version;
                    }
                }
            }
        }
        st.current = Arc::new(TargetVersion {
            snapshot: StoreSnapshot::latest(Arc::new(instance)),
            version,
            epoch,
            partition: partition.clone(),
            last_dirty,
            fingerprints,
        });
        st.stats.publishes += 1;
    }

    /// The current published version (a cheap, immutable handle).
    pub fn snapshot(&self) -> QuerySnapshot {
        QuerySnapshot {
            v: Arc::clone(&self.lock().current),
        }
    }

    /// Evaluates `q` against the current version through the caches.
    pub fn eval(&self, q: &UnionQuery) -> Result<TemporalAnswers> {
        let snap = self.snapshot();
        self.eval_at(&snap, q)
    }

    /// Evaluates `q` against a pinned snapshot through the caches.
    /// Fragment computation happens outside the service lock, so
    /// concurrent readers (and the publishing writer) never wait on each
    /// other's evaluation work.
    pub fn eval_at(&self, snap: &QuerySnapshot, q: &UnionQuery) -> Result<TemporalAnswers> {
        let v = Arc::clone(&snap.v);
        let fp = plan::query_fingerprint(q);

        // Plan: reuse per (fingerprint, epoch), else compile outside the
        // lock and install.
        let cached_plan = {
            let st = self.lock();
            st.plans
                .get(&fp)
                .filter(|e| e.epoch == v.epoch)
                .map(|e| Arc::clone(&e.plan))
        };
        let plan = match cached_plan {
            Some(p) => p,
            None => {
                let p = Arc::new(plan::plan_union(&v.snapshot, q)?);
                let mut st = self.lock();
                st.stats.plans_compiled += 1;
                st.plans.insert(
                    fp,
                    PlanEntry {
                        epoch: v.epoch,
                        plan: Arc::clone(&p),
                    },
                );
                p
            }
        };
        let cq = CompiledQuery::from_plan(plan);

        // Fragments: fetch the cached per-partition entries under the
        // lock, then compute the invalid ones lock-free.
        let ranges = v.partition.ranges();
        let nparts = ranges.len();
        let cached: Vec<Option<FragPart>> = {
            let st = self.lock();
            match st.frags.get(&fp) {
                Some(e) if e.epoch == v.epoch && e.parts.len() == nparts => e.parts.clone(),
                _ => vec![None; nparts],
            }
        };
        let mut result = TemporalAnswers::new();
        let mut computed: Vec<(usize, FragPart)> = Vec::new();
        let mut reused = 0u64;
        for (p, range) in ranges.iter().enumerate() {
            let valid = cached.get(p).and_then(|c| c.as_ref()).filter(|f| {
                f.version <= v.version
                    && f.version >= v.last_dirty.get(p).copied().unwrap_or(u64::MAX)
            });
            let answers = match valid {
                Some(f) => {
                    reused += 1;
                    Arc::clone(&f.answers)
                }
                None => {
                    let a = Arc::new(cq.eval_clipped(&v.snapshot, *range));
                    computed.push((
                        p,
                        FragPart {
                            version: v.version,
                            answers: Arc::clone(&a),
                        },
                    ));
                    a
                }
            };
            result.merge_from(&answers);
        }

        // Install the recomputed fragments, never clobbering newer ones.
        let mut st = self.lock();
        st.stats.evals += 1;
        st.stats.fragments_reused += reused;
        st.stats.fragments_recomputed += computed.len() as u64;
        let entry = st.frags.entry(fp).or_insert_with(|| FragEntry {
            epoch: v.epoch,
            parts: vec![None; nparts],
        });
        if entry.epoch < v.epoch || entry.parts.len() != nparts {
            entry.epoch = v.epoch;
            entry.parts = vec![None; nparts];
        }
        if entry.epoch == v.epoch {
            for (p, frag) in computed {
                if let Some(slot) = entry.parts.get_mut(p) {
                    let newer = slot.as_ref().is_none_or(|old| old.version < frag.version);
                    if newer {
                        *slot = Some(frag);
                    }
                }
            }
        }
        Ok(result)
    }

    /// Cache effectiveness counters so far.
    pub fn stats(&self) -> CacheStats {
        self.lock().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::concrete::naive_eval_concrete;
    use tdx_logic::{parse_query, RelationSchema, Schema};
    use tdx_temporal::{Breakpoints, Interval};

    fn schema() -> Arc<Schema> {
        Arc::new(
            Schema::new(vec![RelationSchema::new(
                "Emp",
                &["name", "company", "salary"],
            )])
            .unwrap(),
        )
    }

    fn seed() -> TemporalInstance {
        let mut i = TemporalInstance::new(schema());
        i.insert_strs("Emp", &["Ada", "IBM", "18k"], Interval::new(0, 10));
        i.insert_strs("Emp", &["Bob", "IBM", "13k"], Interval::new(20, 30));
        i
    }

    fn q() -> UnionQuery {
        parse_query("Q(n) :- Emp(n, IBM, s)").unwrap().into()
    }

    fn two_parts() -> TimelinePartition {
        TimelinePartition::new(&Breakpoints::from_points([15]))
    }

    #[test]
    fn warm_eval_reuses_every_fragment() {
        let svc = QueryService::new(seed(), two_parts());
        let first = svc.eval(&q()).unwrap();
        let second = svc.eval(&q()).unwrap();
        assert_eq!(first, second);
        let stats = svc.stats();
        assert_eq!(stats.plans_compiled, 1);
        assert_eq!(stats.fragments_recomputed, 2);
        assert_eq!(stats.fragments_reused, 2);
        assert_eq!(first, naive_eval_concrete(&seed(), &q()).unwrap());
    }

    #[test]
    fn dirty_partition_invalidates_only_its_fragment() {
        let parts = two_parts();
        let svc = QueryService::new(seed(), parts.clone());
        svc.eval(&q()).unwrap();
        // A batch touching only the second partition's range.
        let mut next = seed();
        next.insert_strs("Emp", &["Cyd", "IBM", "99k"], Interval::new(20, 25));
        svc.publish(next.clone(), &parts, DirtySet::Parts(&[1]));
        let after = svc.eval(&q()).unwrap();
        assert_eq!(after, naive_eval_concrete(&next, &q()).unwrap());
        let stats = svc.stats();
        // Second eval recomputed exactly the dirty fragment.
        assert_eq!(stats.fragments_recomputed, 3);
        assert_eq!(stats.fragments_reused, 1);
        assert_eq!(stats.plans_compiled, 1, "same epoch: plan reused");
    }

    #[test]
    fn repartition_bumps_the_epoch_and_drops_all_caches() {
        let svc = QueryService::new(seed(), two_parts());
        svc.eval(&q()).unwrap();
        let finer = TimelinePartition::new(&Breakpoints::from_points([10, 20]));
        svc.publish(seed(), &finer, DirtySet::Parts(&[0]));
        let after = svc.eval(&q()).unwrap();
        assert_eq!(after, naive_eval_concrete(&seed(), &q()).unwrap());
        let stats = svc.stats();
        assert_eq!(stats.plans_compiled, 2, "epoch bump recompiles");
        assert_eq!(stats.fragments_recomputed, 2 + 3);
    }

    #[test]
    fn pinned_snapshot_answers_do_not_move_under_a_publish() {
        let parts = two_parts();
        let svc = QueryService::new(seed(), parts.clone());
        let pinned = svc.snapshot();
        let before = svc.eval_at(&pinned, &q()).unwrap();
        let mut next = seed();
        next.insert_strs("Emp", &["Cyd", "IBM", "99k"], Interval::new(0, 5));
        svc.publish(next, &parts, DirtySet::All);
        let replay = svc.eval_at(&pinned, &q()).unwrap();
        assert_eq!(before, replay, "pinned snapshot is immutable");
        assert_ne!(svc.eval(&q()).unwrap(), before);
    }
}
