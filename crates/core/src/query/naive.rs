//! Naïve evaluation on relational snapshots.
//!
//! Naïve tables evaluate unions of conjunctive queries by treating labeled
//! nulls as fresh constants and dropping result tuples that still contain
//! one (Imieliński & Lipski; paper Section 5). On a universal solution this
//! computes exactly the certain answers.

use crate::error::Result;
use std::collections::BTreeSet;
use tdx_logic::{ConjunctiveQuery, Constant, Term, UnionQuery};
use tdx_storage::{Instance, Value};

/// Evaluates one conjunctive query, keeping tuples that contain nulls
/// (`q(db)` on the naïve table, before the `↓` step).
pub fn eval_cq_raw(db: &Instance, q: &ConjunctiveQuery) -> Result<BTreeSet<Vec<Value>>> {
    let mut out = BTreeSet::new();
    db.find_matches(&q.body, &[], |m| {
        let tuple: Vec<Value> = q
            .head
            .iter()
            .map(|t| match t {
                Term::Const(c) => Value::Const(*c),
                Term::Var(v) => m.value(*v).expect("safe query: head var bound"),
            })
            .collect();
        out.insert(tuple);
        true
    })?;
    Ok(out)
}

/// Naïve evaluation `q(db)↓` of a union of conjunctive queries: evaluate
/// every disjunct, drop tuples containing nulls.
pub fn naive_eval_snapshot(db: &Instance, q: &UnionQuery) -> Result<BTreeSet<Vec<Constant>>> {
    let mut out = BTreeSet::new();
    for disjunct in q.disjuncts() {
        for tuple in eval_cq_raw(db, disjunct)? {
            let constants: Option<Vec<Constant>> = tuple.iter().map(|v| v.as_const()).collect();
            if let Some(t) = constants {
                out.insert(t);
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tdx_logic::{parse_query, parse_union_query, RelationSchema, Schema};
    use tdx_storage::NullId;

    fn target() -> Arc<Schema> {
        Arc::new(
            Schema::new(vec![
                RelationSchema::new("Emp", &["name", "company", "salary"]),
                RelationSchema::new("Former", &["name"]),
            ])
            .unwrap(),
        )
    }

    fn db() -> Instance {
        let mut db = Instance::new(target());
        db.insert_values(
            "Emp",
            [Value::str("Ada"), Value::str("IBM"), Value::str("18k")],
        );
        db.insert_values(
            "Emp",
            [Value::str("Bob"), Value::str("IBM"), Value::Null(NullId(0))],
        );
        db.insert_values("Former", [Value::str("Cyd")]);
        db
    }

    #[test]
    fn raw_keeps_nulls() {
        let q = parse_query("Q(n, s) :- Emp(n, c, s)").unwrap();
        let rows = eval_cq_raw(&db(), &q).unwrap();
        assert_eq!(rows.len(), 2);
        assert!(rows.contains(&vec![Value::str("Ada"), Value::str("18k")]));
        assert!(rows.contains(&vec![Value::str("Bob"), Value::Null(NullId(0))]));
    }

    #[test]
    fn naive_drops_null_tuples() {
        let q: UnionQuery = parse_query("Q(n, s) :- Emp(n, c, s)").unwrap().into();
        let rows = naive_eval_snapshot(&db(), &q).unwrap();
        assert_eq!(rows.len(), 1);
        assert!(rows.contains(&vec![Constant::str("Ada"), Constant::str("18k")]));
    }

    #[test]
    fn null_join_succeeds_within_naive_semantics() {
        // Nulls are constants: Emp(Bob, …, N0) joins with itself on salary.
        let q: UnionQuery = parse_query("Q(n) :- Emp(n, c, s) & Emp(n, c2, s)")
            .unwrap()
            .into();
        let rows = naive_eval_snapshot(&db(), &q).unwrap();
        // Bob's tuple joins with itself but N0 never reaches the output;
        // only the name is output, so both Ada and Bob qualify.
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn union_query_merges_disjuncts() {
        let q = parse_union_query("Q(n) :- Emp(n, c, s); Q(n) :- Former(n)").unwrap();
        let rows = naive_eval_snapshot(&db(), &q).unwrap();
        let names: Vec<String> = rows.iter().map(|t| t[0].to_string()).collect();
        assert_eq!(names, vec!["Ada", "Bob", "Cyd"]);
    }

    #[test]
    fn constant_head_terms() {
        // `works` is lowercase, hence a variable — unsafe head, rejected.
        assert!(parse_query("Q(n, works) :- Emp(n, c, s)").is_err());
        // A quoted constant in the head is fine and copied to every tuple.
        let q: UnionQuery = parse_query("Q(n, 'works') :- Emp(n, c, s)").unwrap().into();
        let rows = naive_eval_snapshot(&db(), &q).unwrap();
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|t| t[1] == Constant::str("works")));
    }
}
