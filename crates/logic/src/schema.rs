//! Relational schemas.

use crate::symbol::Symbol;
// tdx-lint: allow(hash-order): name-to-RelId lookup; never iterated
use std::collections::HashMap;
use std::fmt;

/// Index of a relation inside a [`Schema`], used as a compact handle by the
/// storage layer.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct RelId(pub u32);

/// The schema of one relation `R(A₁, …, Aₙ)` — the name and its (data)
/// attributes. The temporal attribute `T` of the concrete schema `R⁺` is
/// implicit: it is added by the temporal storage layer, never listed here.
#[derive(Clone, PartialEq, Eq)]
pub struct RelationSchema {
    name: Symbol,
    attrs: Vec<Symbol>,
}

impl RelationSchema {
    /// Builds a relation schema from a name and attribute names.
    pub fn new(name: &str, attrs: &[&str]) -> RelationSchema {
        RelationSchema {
            name: Symbol::intern(name),
            attrs: attrs.iter().map(|a| Symbol::intern(a)).collect(),
        }
    }

    /// Builds a relation schema from interned symbols.
    pub fn from_symbols(name: Symbol, attrs: Vec<Symbol>) -> RelationSchema {
        RelationSchema { name, attrs }
    }

    /// The relation name.
    pub fn name(&self) -> Symbol {
        self.name
    }

    /// The data attribute names.
    pub fn attrs(&self) -> &[Symbol] {
        &self.attrs
    }

    /// Number of data attributes.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// Index of an attribute by name.
    pub fn attr_index(&self, name: Symbol) -> Option<usize> {
        self.attrs.iter().position(|&a| a == name)
    }
}

impl fmt::Display for RelationSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, a) in self.attrs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Debug for RelationSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// A relational database schema: an ordered collection of relation schemas
/// with unique names.
#[derive(Clone, PartialEq, Eq, Default)]
pub struct Schema {
    rels: Vec<RelationSchema>,
    by_name: HashMap<Symbol, RelId>,
}

impl Schema {
    /// Builds a schema, rejecting duplicate relation names.
    pub fn new(rels: Vec<RelationSchema>) -> Result<Schema, String> {
        let mut by_name = HashMap::with_capacity(rels.len());
        for (i, r) in rels.iter().enumerate() {
            let id = RelId(u32::try_from(i).expect("schema too large"));
            if by_name.insert(r.name(), id).is_some() {
                return Err(format!("duplicate relation name {}", r.name()));
            }
        }
        Ok(Schema { rels, by_name })
    }

    /// An empty schema.
    pub fn empty() -> Schema {
        Schema::default()
    }

    /// The relation schemas, in declaration order.
    pub fn relations(&self) -> &[RelationSchema] {
        &self.rels
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.rels.len()
    }

    /// Whether the schema has no relations.
    pub fn is_empty(&self) -> bool {
        self.rels.is_empty()
    }

    /// Looks up a relation id by name.
    pub fn rel_id(&self, name: Symbol) -> Option<RelId> {
        self.by_name.get(&name).copied()
    }

    /// Looks up a relation schema by id.
    pub fn relation(&self, id: RelId) -> &RelationSchema {
        &self.rels[id.0 as usize]
    }

    /// Looks up a relation schema by name.
    pub fn relation_by_name(&self, name: Symbol) -> Option<&RelationSchema> {
        self.rel_id(name).map(|id| self.relation(id))
    }

    /// Whether `name` is a relation of this schema.
    pub fn contains(&self, name: Symbol) -> bool {
        self.by_name.contains_key(&name)
    }

    /// Iterates relation names as strings (for error messages).
    pub fn relation_names(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.rels.iter().map(|r| r.name().as_str())
    }

    /// Whether the two schemas share any relation name. Data exchange
    /// requires source and target schemas to be disjoint (Section 2).
    pub fn overlaps(&self, other: &Schema) -> bool {
        self.rels.iter().any(|r| other.contains(r.name()))
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, r) in self.rels.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{r}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_lookup() {
        let schema = Schema::new(vec![
            RelationSchema::new("E", &["name", "company"]),
            RelationSchema::new("S", &["name", "salary"]),
        ])
        .unwrap();
        assert_eq!(schema.len(), 2);
        let e = schema.rel_id(Symbol::intern("E")).unwrap();
        assert_eq!(schema.relation(e).arity(), 2);
        assert_eq!(
            schema.relation(e).attr_index(Symbol::intern("company")),
            Some(1)
        );
        assert!(schema.relation_by_name(Symbol::intern("Nope")).is_none());
    }

    #[test]
    fn duplicate_names_rejected() {
        let err = Schema::new(vec![
            RelationSchema::new("E", &["a"]),
            RelationSchema::new("E", &["b"]),
        ]);
        assert!(err.is_err());
    }

    #[test]
    fn disjointness() {
        let s = Schema::new(vec![RelationSchema::new("E", &["a"])]).unwrap();
        let t = Schema::new(vec![RelationSchema::new("Emp", &["a"])]).unwrap();
        let t2 = Schema::new(vec![RelationSchema::new("E", &["x"])]).unwrap();
        assert!(!s.overlaps(&t));
        assert!(s.overlaps(&t2));
    }

    #[test]
    fn display() {
        let schema = Schema::new(vec![RelationSchema::new("E", &["name", "company"])]).unwrap();
        assert_eq!(schema.to_string(), "E(name, company)");
    }
}
