//! A global string interner.
//!
//! Relation names, attribute names, variables and string constants all flow
//! through hash joins and homomorphism searches; interning turns their
//! comparisons into `u32` comparisons. Interned strings are leaked — the set
//! of distinct names in a data exchange run is small and bounded.

// tdx-lint: allow(hash-order): interner lookup table; ids are handed out in insertion order and the map is never iterated
use std::collections::HashMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// An interned string. Equality, hashing and ordering are by intern id;
/// use [`Symbol::as_str`] for the text and [`Symbol::cmp_lexical`] when a
/// human-readable order is needed.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

struct Interner {
    map: HashMap<&'static str, u32>,
    strings: Vec<&'static str>,
}

fn interner() -> &'static Mutex<Interner> {
    static INTERNER: OnceLock<Mutex<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        Mutex::new(Interner {
            map: HashMap::new(),
            strings: Vec::new(),
        })
    })
}

impl Symbol {
    /// Interns a string, returning its symbol.
    pub fn intern(s: &str) -> Symbol {
        let mut guard = interner().lock().expect("interner lock");
        if let Some(&id) = guard.map.get(s) {
            return Symbol(id);
        }
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let id = u32::try_from(guard.strings.len()).expect("interner overflow");
        guard.strings.push(leaked);
        guard.map.insert(leaked, id);
        Symbol(id)
    }

    /// The interned text.
    pub fn as_str(&self) -> &'static str {
        interner().lock().expect("interner lock").strings[self.0 as usize]
    }

    /// Lexicographic comparison of the underlying text (for stable,
    /// human-readable output ordering).
    pub fn cmp_lexical(&self, other: &Symbol) -> std::cmp::Ordering {
        self.as_str().cmp(other.as_str())
    }

    /// The raw intern id (for compact serialization in tests).
    pub fn id(&self) -> u32 {
        self.0
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Self {
        Symbol::intern(s)
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Symbol::intern("Emp");
        let b = Symbol::intern("Emp");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "Emp");
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        let a = Symbol::intern("alpha-string");
        let b = Symbol::intern("beta-string");
        assert_ne!(a, b);
        assert_eq!(a.as_str(), "alpha-string");
        assert_eq!(b.as_str(), "beta-string");
    }

    #[test]
    fn lexical_comparison_uses_text() {
        // Intern in reverse lexicographic order so id order disagrees.
        let z = Symbol::intern("zzz-lex-test");
        let a = Symbol::intern("aaa-lex-test");
        assert_eq!(z.cmp_lexical(&a), std::cmp::Ordering::Greater);
        assert_eq!(a.cmp_lexical(&z), std::cmp::Ordering::Less);
        assert_eq!(a.cmp_lexical(&a), std::cmp::Ordering::Equal);
    }

    #[test]
    fn display_shows_text() {
        assert_eq!(Symbol::intern("IBM").to_string(), "IBM");
        assert_eq!(format!("{:?}", Symbol::intern("IBM")), "\"IBM\"");
    }

    #[test]
    fn from_str_interns() {
        let s: Symbol = "converted".into();
        assert_eq!(s.as_str(), "converted");
    }
}
