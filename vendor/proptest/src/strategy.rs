//! Value-generation strategies: deterministic sampling, no shrinking.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::Range;
use std::rc::Rc;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (needed by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        let inner = Rc::new(self);
        BoxedStrategy {
            sample: Rc::new(move |rng| inner.sample(rng)),
        }
    }
}

/// A type-erased strategy.
#[derive(Clone)]
pub struct BoxedStrategy<T> {
    sample: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.sample)(rng)
    }
}

/// The [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    pub(crate) inner: S,
    pub(crate) f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i64);

impl Strategy for Range<i32> {
    type Value = i32;
    fn sample(&self, rng: &mut TestRng) -> i32 {
        let span = (self.end as i64) - (self.start as i64);
        (self.start as i64 + rng.gen_range(0i64..span)) as i32
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);

/// Strategy of `prop::collection::vec`.
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = if self.len.start >= self.len.end {
            self.len.start
        } else {
            rng.gen_range(self.len.clone())
        };
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}

/// Strategy of `prop::bool::weighted`.
pub struct WeightedBool {
    pub(crate) p: f64,
}

impl Strategy for WeightedBool {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.gen_bool(self.p)
    }
}

/// Strategy of `prop::option::weighted`.
pub struct WeightedOption<S> {
    pub(crate) p: f64,
    pub(crate) inner: S,
}

impl<S: Strategy> Strategy for WeightedOption<S> {
    type Value = Option<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.gen_bool(self.p) {
            Some(self.inner.sample(rng))
        } else {
            None
        }
    }
}

/// Strategy of `prop::sample::select`.
pub struct Select<T: 'static> {
    pub(crate) options: &'static [T],
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        assert!(!self.options.is_empty(), "select: empty pool");
        self.options[rng.gen_range(0..self.options.len())].clone()
    }
}

/// Strategy of [`crate::prop_oneof!`]: a uniform choice between alternatives.
pub struct Union<T> {
    alternatives: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over the given alternatives.
    pub fn new(alternatives: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!alternatives.is_empty(), "prop_oneof!: no alternatives");
        Union { alternatives }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.alternatives.len());
        self.alternatives[i].sample(rng)
    }
}

/// Types with a canonical strategy (subset of upstream's `Arbitrary`).
pub trait Arbitrary: Sized {
    /// The canonical strategy.
    type Strategy: Strategy<Value = Self>;
    /// Builds the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// A full-range integer strategy used by [`any`].
pub struct FullRange<T> {
    _marker: std::marker::PhantomData<T>,
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for FullRange<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = FullRange<$t>;
            fn arbitrary() -> Self::Strategy {
                FullRange { _marker: std::marker::PhantomData }
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, i32, i64);

impl Strategy for FullRange<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = FullRange<bool>;
    fn arbitrary() -> Self::Strategy {
        FullRange {
            _marker: std::marker::PhantomData,
        }
    }
}

/// The canonical strategy for `T` (subset of upstream's `any`).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}
