//! The three chase procedures of the paper.
//!
//! * [`snapshot`] — the classical relational chase of Fagin et al. on one
//!   snapshot: s-t tgd steps followed by egd steps;
//! * [`abstract_chase`] — Section 3: the chase applied to every snapshot of
//!   an abstract instance independently, with fresh nulls per snapshot
//!   (per-point null families per epoch);
//! * [`concrete`] — Section 4.3: the **c-chase** on concrete instances,
//!   with normalization and interval-annotated nulls.

pub mod abstract_chase;
pub mod cluster;
pub mod concrete;
pub mod durable;
pub mod incremental;
pub(crate) mod partitioned;
pub mod snapshot;

pub use abstract_chase::{abstract_chase, abstract_chase_parallel, abstract_chase_parallel_opts};
pub use cluster::{
    snapshot_consistent, DistributedCluster, Message, Response, StoreKind, TrafficStats, Transport,
    TransportKind, TransportSpawner,
};
pub use concrete::{c_chase, CChaseResult, ChaseOptions, ChaseStats};
pub use durable::DurableExchange;
pub use incremental::{BatchStats, DeltaBatch, IncrementalExchange, SessionStats};
pub use snapshot::snapshot_chase;

/// Parses a positive-integer tuning knob from the environment. `0` is an
/// explicit "auto" and falls through silently; anything non-numeric is a
/// misconfiguration the caller should hear about, so it is reported to
/// stderr **once per knob per process** before falling back to auto —
/// silently honoring a typo like `TDX_CHASE_THREADS=four` by running
/// single-knob defaults was a long-standing trap.
fn env_knob(name: &str, warned: &'static std::sync::Once) -> Option<usize> {
    resolve_knob(std::env::var(name).ok().as_deref(), name, warned)
}

/// The pure resolution behind [`env_knob`]: takes the variable's value (if
/// set) instead of reading the process environment, so tests can exercise
/// the garbage path without `set_var` races against concurrently running
/// tests.
fn resolve_knob(
    value: Option<&str>,
    name: &str,
    warned: &'static std::sync::Once,
) -> Option<usize> {
    let v = value?;
    match parse_env_knob(v) {
        Ok(n) => n,
        Err(()) => {
            warned.call_once(|| {
                eprintln!(
                    "tdx: warning: ignoring non-numeric {name}={v:?}; \
                     falling back to auto-detection"
                );
            });
            None
        }
    }
}

/// The pure parse behind [`resolve_knob`]: `Ok(Some(n))` for a positive
/// count, `Ok(None)` for an explicit `0` (auto), `Err(())` for garbage.
fn parse_env_knob(v: &str) -> Result<Option<usize>, ()> {
    match v.trim().parse::<usize>() {
        Ok(n) if n > 0 => Ok(Some(n)),
        Ok(_) => Ok(None),
        Err(_) => Err(()),
    }
}

/// Resolves a worker-thread request into a concrete count — the one knob
/// shared by [`ChaseEngine::PartitionedParallel`](concrete::ChaseEngine) and
/// [`abstract_chase_parallel`]: an explicit `requested > 0` wins; `0` falls
/// back to the `TDX_CHASE_THREADS` environment variable (a non-numeric
/// value is reported once to stderr and ignored), then to the machine's
/// available parallelism (capped at 8 — the chase's partition fan-out
/// saturates well before wide machines do).
pub fn worker_threads(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    static WARNED: std::sync::Once = std::sync::Once::new();
    if let Some(n) = env_knob("TDX_CHASE_THREADS", &WARNED) {
        return n;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

/// Resolves a partition-server request for
/// [`ChaseEngine::Distributed`](concrete::ChaseEngine): an explicit
/// `requested > 0` wins; `0` falls back to the `TDX_CHASE_SERVERS`
/// environment variable (non-numeric values are reported once to stderr
/// and ignored, like [`worker_threads`]), then to 2 — the smallest cluster
/// that actually exercises cross-server replica shipping.
pub fn server_count(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    static WARNED: std::sync::Once = std::sync::Once::new();
    if let Some(n) = env_knob("TDX_CHASE_SERVERS", &WARNED) {
        return n;
    }
    2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_env_knob_classifies_inputs() {
        assert_eq!(parse_env_knob("4"), Ok(Some(4)));
        assert_eq!(parse_env_knob(" 16 "), Ok(Some(16)));
        assert_eq!(parse_env_knob("0"), Ok(None)); // explicit auto
        for garbage in ["", "four", "2x", "-1", "1.5", "0x2", "∞"] {
            assert_eq!(parse_env_knob(garbage), Err(()), "input {garbage:?}");
        }
    }

    #[test]
    fn explicit_request_wins_over_everything() {
        assert_eq!(worker_threads(3), 3);
        assert_eq!(server_count(5), 5);
    }

    #[test]
    fn garbage_knob_values_warn_once_and_fall_back_to_auto() {
        // Exercised through the injected-value resolver rather than
        // `std::env::set_var`: mutating the real environment would race
        // against every concurrently running test that constructs a
        // session (getenv/setenv is UB territory on glibc, and a momentary
        // garbage value would leak into their thread resolution).
        static WARNED: std::sync::Once = std::sync::Once::new();
        for garbage in ["not-a-number", "four", "-1", ""] {
            assert_eq!(
                resolve_knob(Some(garbage), "TDX_CHASE_THREADS", &WARNED),
                None,
                "garbage {garbage:?} must fall back to auto, not panic or stick"
            );
        }
        // The warning path has fired; valid values still resolve.
        assert!(WARNED.is_completed());
        assert_eq!(
            resolve_knob(Some("4"), "TDX_CHASE_THREADS", &WARNED),
            Some(4)
        );
        assert_eq!(resolve_knob(Some("0"), "TDX_CHASE_THREADS", &WARNED), None);
        assert_eq!(resolve_knob(None, "TDX_CHASE_THREADS", &WARNED), None);
    }
}
