//! Property tests for the abstract view: epoch structure, refinement,
//! coalescing, `⟦·⟧`/`concretize` round trips and homomorphism sanity.

use proptest::prelude::*;
use std::sync::Arc;
use tdx_core::{abstract_hom, concretize, semantics, AValue, AbstractInstanceBuilder};
use tdx_logic::{parse_schema, Schema};
use tdx_storage::{NullId, TemporalInstance, Value};
use tdx_temporal::{Endpoint, Interval};

fn schema() -> Arc<Schema> {
    Arc::new(parse_schema("R(a, b). S(a, b).").unwrap())
}

#[derive(Debug, Clone)]
struct GenFact {
    rel: usize,
    a: u8,
    b: Option<u8>, // None = fresh per-point null
    start: u64,
    len: u64,
    unbounded: bool,
}

fn arb_fact() -> impl Strategy<Value = GenFact> {
    (
        0usize..2,
        0u8..4,
        prop::option::weighted(0.8, 0u8..4),
        0u64..16,
        1u64..6,
        prop::bool::weighted(0.2),
    )
        .prop_map(|(rel, a, b, start, len, unbounded)| GenFact {
            rel,
            a,
            b,
            start,
            len,
            unbounded,
        })
}

fn build_concrete(facts: &[GenFact]) -> TemporalInstance {
    let mut i = TemporalInstance::new(schema());
    for (fi, f) in facts.iter().enumerate() {
        let rel = ["R", "S"][f.rel];
        let iv = if f.unbounded {
            Interval::from(f.start)
        } else {
            Interval::new(f.start, f.start + f.len)
        };
        let b = match f.b {
            Some(v) => Value::str(&format!("b{v}")),
            None => Value::Null(NullId(fi as u64)),
        };
        i.insert_values(rel, [Value::str(&format!("a{}", f.a)), b], iv);
    }
    i
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Epochs of `⟦·⟧` tile `[0, ∞)` and are coalesced (no two adjacent
    /// epochs share a snapshot).
    #[test]
    fn semantics_epochs_are_canonical(facts in prop::collection::vec(arb_fact(), 0..10)) {
        let ia = semantics(&build_concrete(&facts));
        let epochs = ia.epochs();
        prop_assert_eq!(epochs[0].interval.start(), 0);
        prop_assert!(epochs.last().unwrap().interval.is_unbounded());
        for w in epochs.windows(2) {
            prop_assert_eq!(
                Endpoint::Fin(w[1].interval.start()),
                w[0].interval.end()
            );
            prop_assert!(w[0].snapshot != w[1].snapshot, "uncoalesced epochs");
        }
    }

    /// `⟦·⟧` agrees with `project_at` at every probed time point.
    #[test]
    fn semantics_agrees_with_projection(
        facts in prop::collection::vec(arb_fact(), 0..10),
        probes in prop::collection::vec(0u64..30, 1..6),
    ) {
        let ic = build_concrete(&facts);
        let ia = semantics(&ic);
        for t in probes {
            let direct = ic.project_at(t);
            let via_epochs = ia.snapshot_at(t);
            // Compare fact counts and rendered forms (nulls render by base
            // in both, modulo the @ℓ suffix).
            prop_assert_eq!(direct.total_len(), via_epochs.total_len(), "t = {}", t);
        }
    }

    /// `concretize ∘ semantics` is the identity up to coalescing, and
    /// `semantics ∘ concretize` is the identity on `⟦·⟧` images.
    #[test]
    fn round_trips(facts in prop::collection::vec(arb_fact(), 0..10)) {
        let ic = build_concrete(&facts);
        let ia = semantics(&ic);
        let back = concretize(&ia).unwrap();
        prop_assert!(back.eq_coalesced(&ic));
        prop_assert!(semantics(&back).eq_semantic(&ia));
    }

    /// Adding facts never destroys an abstract homomorphism: the original
    /// instance maps into any superset of itself.
    #[test]
    fn hom_into_superset(
        facts in prop::collection::vec(arb_fact(), 0..8),
        extra in prop::collection::vec(arb_fact(), 0..4),
    ) {
        let ia = semantics(&build_concrete(&facts));
        let mut all = facts.clone();
        // Shift extra facts' null ids clear of the originals.
        all.extend(extra);
        let superset = semantics(&build_concrete(&all));
        prop_assert!(abstract_hom(&ia, &superset));
    }

    /// Refinement then coalescing is the identity on semantics.
    #[test]
    fn refine_coalesce_identity(
        facts in prop::collection::vec(arb_fact(), 0..8),
        cuts in prop::collection::vec((0u64..30, 1u64..5), 0..4),
    ) {
        let ia = semantics(&build_concrete(&facts));
        let mut bps = tdx_temporal::Breakpoints::new();
        for (s, len) in cuts {
            bps.add_interval(&Interval::new(s, s + len));
        }
        let refined = ia.refine(&bps);
        prop_assert!(refined.eq_semantic(&ia));
        prop_assert_eq!(refined.coalesce().epochs().len(), ia.epochs().len());
    }
}

/// Rigid nulls distinguish the builder from `⟦·⟧` images — a sanity check
/// that the two scopes stay distinct through refinement.
#[test]
fn rigid_nulls_survive_refinement() {
    let mut b = AbstractInstanceBuilder::new(schema());
    b.add(
        "R",
        vec![AValue::str("a"), AValue::Rigid(NullId(9))],
        Interval::new(0, 6),
    );
    let ia = b.build();
    let mut bps = tdx_temporal::Breakpoints::new();
    bps.add_interval(&Interval::new(3, 4));
    let refined = ia.refine(&bps);
    for t in [0u64, 3, 5] {
        let (_, rigids) = refined.snapshot_at(t).null_bases();
        assert_eq!(rigids.into_iter().collect::<Vec<_>>(), vec![NullId(9)]);
    }
    // Still not concretizable after refinement.
    assert!(concretize(&refined).is_err());
}
