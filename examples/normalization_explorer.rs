//! Exploring the normalization trade-off of Section 4.2.
//!
//! Normalization is what lets time intervals "behave as constants" when a
//! dependency's atoms share the temporal variable `t`. The paper offers two
//! algorithms — endpoint-oblivious (naïve, `O(n log n)`) and schema-aware
//! (Algorithm 1, polynomial, output-minimal-ish) — and notes the trade-off
//! between normalization time and instance size. This example walks through
//! it on three workload shapes.
//!
//! ```text
//! cargo run --release --example normalization_explorer
//! ```

use std::time::Instant;
use tdx::core::normalize::{has_empty_intersection_property, naive_normalize, normalize};
use tdx::semantics;
use tdx::workload::{clustered_instance, nested_intervals, ClusteredConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:<18} {:>7} {:>9} {:>11} {:>9} {:>11}",
        "workload", "facts", "|naive|", "naive time", "|alg1|", "alg1 time"
    );

    // 1. Sparse: joins only inside small clusters, clusters interleaved on
    //    the timeline. Algorithm 1 wins on output size.
    for clusters in [16usize, 64, 128] {
        let (ic, conj) = clustered_instance(&ClusteredConfig {
            clusters,
            pairs_per_cluster: 2,
            overlapping: true,
        });
        let t0 = Instant::now();
        let naive = naive_normalize(&ic);
        let t_naive = t0.elapsed();
        let t0 = Instant::now();
        let smart = normalize(&ic, &[&conj])?;
        let t_smart = t0.elapsed();
        println!(
            "{:<18} {:>7} {:>9} {:>10.2?} {:>9} {:>10.2?}",
            format!("sparse/c{clusters}"),
            ic.total_len(),
            naive.total_len(),
            t_naive,
            smart.total_len(),
            t_smart,
        );
        // Both outputs are usable: the empty intersection property holds,
        // and both represent the same abstract instance.
        assert!(has_empty_intersection_property(&naive, &[&conj])?);
        assert!(has_empty_intersection_property(&smart, &[&conj])?);
        assert!(semantics(&naive).eq_semantic(&semantics(&smart)));
    }

    // 2. Dense: Theorem 13's nested-interval family. Everything joins with
    //    everything, so both algorithms produce the same Θ(n²) fragments and
    //    the naïve one is simply cheaper to run.
    for n in [32usize, 64, 128] {
        let (ic, conj) = nested_intervals(n);
        let t0 = Instant::now();
        let naive = naive_normalize(&ic);
        let t_naive = t0.elapsed();
        let t0 = Instant::now();
        let smart = normalize(&ic, &[&conj])?;
        let t_smart = t0.elapsed();
        println!(
            "{:<18} {:>7} {:>9} {:>10.2?} {:>9} {:>10.2?}",
            format!("dense/n{n}"),
            ic.total_len(),
            naive.total_len(),
            t_naive,
            smart.total_len(),
            t_smart,
        );
        assert_eq!(smart.total_len(), n * n, "Theorem 13 bound is tight here");
    }

    // 3. Disjoint clusters: nothing overlaps a join partner, so Algorithm 1
    //    is the identity while naïve still fragments.
    let (ic, conj) = clustered_instance(&ClusteredConfig {
        clusters: 32,
        pairs_per_cluster: 2,
        overlapping: false,
    });
    let naive = naive_normalize(&ic);
    let smart = normalize(&ic, &[&conj])?;
    println!(
        "{:<18} {:>7} {:>9} {:>11} {:>9} {:>11}",
        "disjoint/c32",
        ic.total_len(),
        naive.total_len(),
        "-",
        smart.total_len(),
        "-",
    );
    assert_eq!(smart.total_len(), ic.total_len());

    println!("\ntakeaway: fragment against the schema mapping when instances are sparse;");
    println!("fragment blindly when everything overlaps everything anyway.");
    Ok(())
}
