//! A chase for temporal (modal) s-t tgds — the paper's Section 7 sketch,
//! made concrete.
//!
//! The paper ends by asking how data exchange changes when schema mappings
//! can express temporal phenomena, giving the example
//! `PhDgrad(n) → ◇⁻ ∃adv,top PhDCan(n, adv, top)` and asking: *"if ◇ is used
//! in the rhs of a dependency, is it enough to choose an arbitrary snapshot
//! and generate facts according to the rhs in that snapshot? What will be a
//! universal solution in this case?"*
//!
//! This module implements one principled answer for **source-to-target**
//! modal tgds over the abstract view:
//!
//! * the two-sorted FOL semantics is implemented exactly
//!   ([`satisfies_temporal_tgd`]), with existential witnesses chosen per
//!   snapshot;
//! * the chase ([`temporal_chase`]) fires a modal obligation only when it is
//!   not already satisfied (restricted chase), and places witnesses by a
//!   deterministic, minimal-commitment policy:
//!
//!   | modality | obligation for support `[s, e)` | witness placed at |
//!   |----------|--------------------------------|-------------------|
//!   | `now`    | every `ℓ ∈ [s, e)`             | `[s, e)`          |
//!   | `◇⁻`     | some `ℓ′ < ℓ`, hardest `ℓ = s` | `[s−1, s)`        |
//!   | `□⁻`     | all `ℓ′ < ℓ`, hardest `ℓ = e−1`| `[0, e−1)` (or `[0, ∞)`) |
//!   | `◇⁺`     | some `ℓ′ > ℓ`, hardest `ℓ = e−1`| `[e, e+1)` (or `[s+1, ∞)`) |
//!   | `□⁺`     | all `ℓ′ > ℓ`                   | `[s+1, ∞)`        |
//!
//! * a `◇⁻` obligation whose support includes time point 0 is
//!   **unsatisfiable** (time has a beginning) and reported as
//!   [`TdxError::TemporalUnsatisfiable`] — no solution exists;
//! * the result is verified to be a *solution*; whether it is universal is
//!   exactly the open question the paper poses, and is deliberately not
//!   claimed. (For `◇` obligations the witness position is a genuine
//!   choice, so distinct incomparable solutions exist.)

use crate::abstract_view::{ASnapshot, AValue, AbstractInstance, Epoch};
use crate::chase::abstract_chase::abstract_chase;
use crate::chase::snapshot::egd_phase;
use crate::error::{Result, TdxError};
use std::sync::Arc;
use tdx_logic::{Atom, Modality, RelId, Schema, SchemaMapping, TemporalTgd, Term, Var};
use tdx_storage::{Instance, NullGen, Value};
use tdx_temporal::{partition::epochs_over_timeline, Breakpoints, Endpoint, Interval, TimePoint};

/// A data exchange setting extended with temporal s-t tgds.
pub struct TemporalSetting {
    /// The non-temporal part `M = (R_S, R_T, Σ_st, Σ_eg)`.
    pub base: SchemaMapping,
    /// The modal s-t tgds.
    pub temporal_tgds: Vec<TemporalTgd>,
}

impl TemporalSetting {
    /// Validates the modal tgds against the base mapping's schemas.
    pub fn new(
        base: SchemaMapping,
        temporal_tgds: Vec<TemporalTgd>,
    ) -> std::result::Result<TemporalSetting, String> {
        for t in &temporal_tgds {
            t.validate(base.source(), base.target())?;
        }
        Ok(TemporalSetting {
            base,
            temporal_tgds,
        })
    }
}

/// What one (tgd, homomorphism, support-epoch) triple obliges of the target.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Obligation {
    /// Head must hold at every point of the interval.
    ForAll(Interval),
    /// Head must hold at some point strictly before `t`.
    ExistsBefore(TimePoint),
    /// Head must hold at some point `≥ t`.
    ExistsAtOrAfter(TimePoint),
    /// Head must hold at arbitrarily large points.
    ExistsUnbounded,
    /// Nothing required (e.g. `□⁻` supported only at time 0).
    Trivial,
}

fn obligation(tgd: &TemporalTgd, support: Interval) -> Result<(Obligation, Option<Interval>)> {
    let s = support.start();
    Ok(match tgd.modality {
        Modality::Now => (Obligation::ForAll(support), Some(support)),
        Modality::SometimePast => {
            if s == 0 {
                return Err(TdxError::TemporalUnsatisfiable {
                    dependency: tgd.name.clone().unwrap_or_else(|| tgd.to_string()),
                    detail: "a ◇⁻ obligation is supported at time point 0, which has no past"
                        .into(),
                });
            }
            (Obligation::ExistsBefore(s), Some(Interval::new(s - 1, s)))
        }
        Modality::AlwaysPast => match support.end() {
            Endpoint::Fin(e) => {
                if e - 1 == 0 {
                    (Obligation::Trivial, None)
                } else {
                    let iv = Interval::new(0, e - 1);
                    (Obligation::ForAll(iv), Some(iv))
                }
            }
            Endpoint::Inf => {
                let iv = Interval::all();
                (Obligation::ForAll(iv), Some(iv))
            }
        },
        Modality::SometimeFuture => match support.end() {
            Endpoint::Fin(e) => (
                Obligation::ExistsAtOrAfter(e),
                Some(Interval::new(e, e + 1)),
            ),
            Endpoint::Inf => (Obligation::ExistsUnbounded, Some(Interval::from(s + 1))),
        },
        Modality::AlwaysFuture => {
            let iv = Interval::from(s + 1);
            (Obligation::ForAll(iv), Some(iv))
        }
    })
}

/// Encodes an abstract snapshot for matching: per-point and rigid bases map
/// to labeled nulls injectively (rigid bases are odd, per-point even — the
/// same scheme as the query evaluator).
fn encode(snap: &ASnapshot, schema: Arc<Schema>) -> Instance {
    let mut db = Instance::new(schema);
    for (rel, row) in snap.iter_all() {
        db.insert(
            rel,
            row.iter()
                .map(|v| match v {
                    AValue::Const(c) => Value::Const(*c),
                    AValue::PerPoint(b) => Value::Null(tdx_storage::NullId(2 * b.0)),
                    AValue::Rigid(b) => Value::Null(tdx_storage::NullId(2 * b.0 + 1)),
                })
                .collect(),
        );
    }
    db
}

/// Checks whether an obligation is met in the target, for the given bound
/// head variables.
fn obligation_met(
    target: &AbstractInstance,
    head: &[Atom],
    prebound: &[(Var, Value)],
    ob: &Obligation,
) -> Result<bool> {
    let schema = target.schema_arc();
    let hom_at = |epoch: &Epoch| -> Result<bool> {
        Ok(encode(&epoch.snapshot, Arc::clone(&schema)).exists_match(head, prebound)?)
    };
    match ob {
        Obligation::Trivial => Ok(true),
        Obligation::ForAll(iv) => {
            for epoch in target.epochs() {
                if epoch.interval.overlaps(iv) && !hom_at(epoch)? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        Obligation::ExistsBefore(t) => {
            for epoch in target.epochs() {
                if epoch.interval.start() < *t && hom_at(epoch)? {
                    return Ok(true);
                }
            }
            Ok(false)
        }
        Obligation::ExistsAtOrAfter(t) => {
            for epoch in target.epochs() {
                if epoch.interval.overlaps(&Interval::from(*t)) && hom_at(epoch)? {
                    return Ok(true);
                }
            }
            Ok(false)
        }
        Obligation::ExistsUnbounded => {
            let last = target.epochs().last().expect("epochs tile the timeline");
            hom_at(last)
        }
    }
}

/// One target fact extent used during the temporal chase.
type Extent = (RelId, crate::abstract_view::ARow, Interval);

fn rebuild(schema: Arc<Schema>, extents: &[Extent]) -> AbstractInstance {
    let bps = Breakpoints::from_intervals(extents.iter().map(|(_, _, iv)| iv));
    let epochs = epochs_over_timeline(&bps)
        .into_iter()
        .map(|iv| {
            let mut snap = ASnapshot::new(Arc::clone(&schema));
            for (rel, row, fiv) in extents {
                if fiv.covers(&iv) {
                    snap.insert(*rel, Arc::clone(row));
                }
            }
            Epoch {
                interval: iv,
                snapshot: snap,
            }
        })
        .collect();
    AbstractInstance::from_epochs(schema, epochs)
        .expect("epochs_over_timeline tiles the timeline")
        .coalesce()
}

fn max_null_base(ja: &AbstractInstance) -> u64 {
    let mut max = 0;
    for epoch in ja.epochs() {
        let (pp, rg) = epoch.snapshot.null_bases();
        for b in pp.iter().chain(rg.iter()) {
            max = max.max(b.0 + 1);
        }
    }
    max
}

/// Runs the temporal chase: the ordinary abstract chase for the base
/// mapping, then modal obligations to a fixpoint, then the egds once more
/// (witness insertion can create new egd violations).
pub fn temporal_chase(
    ia: &AbstractInstance,
    setting: &TemporalSetting,
) -> Result<AbstractInstance> {
    // Phase 1: the non-temporal part.
    let ja = abstract_chase(ia, &setting.base)?;
    let schema = ja.schema_arc();
    let mut nulls = NullGen::starting_at(max_null_base(&ja));
    let mut extents: Vec<Extent> = Vec::new();
    for epoch in ja.epochs() {
        for (rel, row) in epoch.snapshot.iter_all() {
            extents.push((rel, Arc::clone(row), epoch.interval));
        }
    }

    // Phase 2: modal obligations to fixpoint. Insertions only add facts and
    // obligations are monotone, so each (tgd, hom, epoch) fires at most
    // once.
    let src_schema = Arc::new(setting.base.source().clone());
    loop {
        let target = rebuild(Arc::clone(&schema), &extents);
        let mut inserted = false;
        for tgd in &setting.temporal_tgds {
            for src_epoch in ia.epochs() {
                let src_db = encode(&src_epoch.snapshot, Arc::clone(&src_schema));
                let mut homs: Vec<Vec<(Var, Value)>> = Vec::new();
                src_db.find_matches(&tgd.body, &[], |m| {
                    homs.push(m.bindings());
                    true
                })?;
                for h in homs {
                    let (ob, placement) = obligation(tgd, src_epoch.interval)?;
                    if obligation_met(&target, &tgd.head, &h, &ob)? {
                        continue;
                    }
                    let Some(witness_iv) = placement else {
                        continue;
                    };
                    // Instantiate the head with fresh per-point families for
                    // the existentials.
                    let mut env = h.clone();
                    for v in tgd.existential_vars() {
                        env.push((v, Value::Null(nulls.fresh())));
                    }
                    for atom in &tgd.head {
                        let rel = schema.rel_id(atom.relation).expect("validated head");
                        let row: crate::abstract_view::ARow = atom
                            .terms
                            .iter()
                            .map(|t| match t {
                                Term::Const(c) => AValue::Const(*c),
                                Term::Var(v) => {
                                    let val =
                                        env.iter().find(|(w, _)| w == v).expect("head var bound").1;
                                    match val {
                                        Value::Const(c) => AValue::Const(c),
                                        Value::Null(b) => AValue::PerPoint(b),
                                    }
                                }
                            })
                            .collect();
                        extents.push((rel, row, witness_iv));
                    }
                    inserted = true;
                }
            }
        }
        if !inserted {
            break;
        }
    }

    // Phase 3: egds over the enlarged target, epoch by epoch.
    let with_witnesses = rebuild(Arc::clone(&schema), &extents);
    if setting.base.egds().is_empty() {
        return Ok(with_witnesses);
    }
    let mut epochs = Vec::with_capacity(with_witnesses.epochs().len());
    for epoch in with_witnesses.epochs() {
        let db = encode(&epoch.snapshot, Arc::clone(&schema));
        let (after, _) = egd_phase(&db, setting.base.egds()).map_err(|e| match e {
            TdxError::ChaseFailure {
                dependency,
                left,
                right,
                ..
            } => TdxError::ChaseFailure {
                dependency,
                left,
                right,
                interval: Some(epoch.interval),
            },
            other => other,
        })?;
        let mut snap = ASnapshot::new(Arc::clone(&schema));
        for (rel, row) in after.iter_all() {
            snap.insert(
                rel,
                row.iter()
                    .map(|v| match v {
                        Value::Const(c) => AValue::Const(*c),
                        // Decode the injective encoding from `encode`.
                        Value::Null(b) if b.0 % 2 == 0 => {
                            AValue::PerPoint(tdx_storage::NullId(b.0 / 2))
                        }
                        Value::Null(b) => AValue::Rigid(tdx_storage::NullId((b.0 - 1) / 2)),
                    })
                    .collect(),
            );
        }
        epochs.push(Epoch {
            interval: epoch.interval,
            snapshot: snap,
        });
    }
    Ok(AbstractInstance::from_epochs(schema, epochs)?.coalesce())
}

/// Checks the two-sorted FOL semantics of one temporal tgd against a
/// source/target pair of abstract instances.
pub fn satisfies_temporal_tgd(
    src: &AbstractInstance,
    tgt: &AbstractInstance,
    tgd: &TemporalTgd,
) -> Result<bool> {
    let src_schema = src.schema_arc();
    for src_epoch in src.epochs() {
        let src_db = encode(&src_epoch.snapshot, Arc::clone(&src_schema));
        let mut homs: Vec<Vec<(Var, Value)>> = Vec::new();
        src_db.find_matches(&tgd.body, &[], |m| {
            homs.push(m.bindings());
            true
        })?;
        for h in homs {
            let ob = match obligation(tgd, src_epoch.interval) {
                Ok((ob, _)) => ob,
                // Unsatisfiable obligation ⇒ no target satisfies the tgd.
                Err(TdxError::TemporalUnsatisfiable { .. }) => return Ok(false),
                Err(other) => return Err(other),
            };
            if !obligation_met(tgt, &tgd.head, &h, &ob)? {
                return Ok(false);
            }
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abstract_view::AbstractInstanceBuilder;
    use tdx_logic::{parse_egd, parse_schema, parse_temporal_tgd, parse_tgd};

    fn iv(s: u64, e: u64) -> Interval {
        Interval::new(s, e)
    }

    fn phd_setting() -> TemporalSetting {
        let base = SchemaMapping::new(
            parse_schema("PhDgrad(name). Works(name, dept).").unwrap(),
            parse_schema("PhDCan(name, adviser, topic). Staff(name, dept).").unwrap(),
            vec![parse_tgd("Works(n, d) -> Staff(n, d)").unwrap()],
            vec![],
        )
        .unwrap();
        TemporalSetting::new(
            base,
            vec![parse_temporal_tgd(
                "PhDgrad(n) -> sometime_past exists adv, top . PhDCan(n, adv, top)",
            )
            .unwrap()
            .named("grad")],
        )
        .unwrap()
    }

    fn source_with_grad(over: Interval) -> AbstractInstance {
        let schema = Arc::new(parse_schema("PhDgrad(name). Works(name, dept).").unwrap());
        let mut b = AbstractInstanceBuilder::new(schema);
        b.add("PhDgrad", vec![AValue::str("Ada")], over);
        b.build()
    }

    #[test]
    fn phd_example_places_past_witness() {
        let setting = phd_setting();
        let src = source_with_grad(iv(5, 8));
        let tgt = temporal_chase(&src, &setting).unwrap();
        // A PhDCan fact with fresh per-point nulls sits at [4, 5).
        let snap4 = tgt.snapshot_at(4);
        assert_eq!(snap4.total_len(), 1);
        let (pp, _) = snap4.null_bases();
        assert_eq!(pp.len(), 2); // adv and top
        assert!(tgt.snapshot_at(3).is_empty());
        assert!(tgt.snapshot_at(5).is_empty());
        // The result satisfies the modal semantics.
        assert!(satisfies_temporal_tgd(&src, &tgt, &setting.temporal_tgds[0]).unwrap());
    }

    #[test]
    fn graduation_at_time_zero_is_unsatisfiable() {
        let setting = phd_setting();
        let src = source_with_grad(iv(0, 3));
        match temporal_chase(&src, &setting) {
            Err(TdxError::TemporalUnsatisfiable { dependency, .. }) => {
                assert_eq!(dependency, "grad");
            }
            other => panic!("expected unsatisfiable, got {other:?}"),
        }
        // And indeed no target satisfies it.
        let empty_target = AbstractInstance::empty(Arc::new(
            parse_schema("PhDCan(name, adviser, topic). Staff(name, dept).").unwrap(),
        ));
        assert!(!satisfies_temporal_tgd(&src, &empty_target, &setting.temporal_tgds[0]).unwrap());
    }

    #[test]
    fn existing_witness_suppresses_firing() {
        // If the candidate record is already implied by the base mapping,
        // the modal tgd must not fire (restricted chase).
        let base = SchemaMapping::new(
            parse_schema("PhDgrad(name). Cand(name, adviser, topic).").unwrap(),
            parse_schema("PhDCan(name, adviser, topic).").unwrap(),
            vec![parse_tgd("Cand(n, a, t) -> PhDCan(n, a, t)").unwrap()],
            vec![],
        )
        .unwrap();
        let setting = TemporalSetting::new(
            base,
            vec![parse_temporal_tgd(
                "PhDgrad(n) -> sometime_past exists adv, top . PhDCan(n, adv, top)",
            )
            .unwrap()],
        )
        .unwrap();
        let schema = Arc::new(parse_schema("PhDgrad(name). Cand(name, adviser, topic).").unwrap());
        let mut b = AbstractInstanceBuilder::new(schema);
        b.add("PhDgrad", vec![AValue::str("Ada")], iv(5, 8));
        b.add(
            "Cand",
            vec![AValue::str("Ada"), AValue::str("Prof"), AValue::str("DBs")],
            iv(1, 4),
        );
        let src = b.build();
        let tgt = temporal_chase(&src, &setting).unwrap();
        // No fresh witness: the copied Cand fact at [1,4) already does it.
        for t in [0u64, 4] {
            assert!(tgt.snapshot_at(t).is_complete(), "t = {t}");
        }
        let total_nulls: usize = tgt
            .epochs()
            .iter()
            .map(|e| {
                let (pp, rg) = e.snapshot.null_bases();
                pp.len() + rg.len()
            })
            .sum();
        assert_eq!(total_nulls, 0);
    }

    #[test]
    fn always_past_fills_prefix() {
        let base = SchemaMapping::new(
            parse_schema("Grad(name).").unwrap(),
            parse_schema("Enrolled(name).").unwrap(),
            vec![],
            vec![],
        )
        .unwrap();
        let setting = TemporalSetting::new(
            base,
            vec![parse_temporal_tgd("Grad(n) -> always_past Enrolled(n)").unwrap()],
        )
        .unwrap();
        let schema = Arc::new(parse_schema("Grad(name).").unwrap());
        let mut b = AbstractInstanceBuilder::new(schema);
        b.add("Grad", vec![AValue::str("Ada")], iv(4, 7));
        let src = b.build();
        let tgt = temporal_chase(&src, &setting).unwrap();
        // Enrolled(Ada) must hold at every ℓ' < 6, i.e. on [0, 6).
        for t in 0..6u64 {
            assert_eq!(tgt.snapshot_at(t).render(), "{Enrolled(Ada)}", "t = {t}");
        }
        assert!(tgt.snapshot_at(6).is_empty());
        assert!(satisfies_temporal_tgd(&src, &tgt, &setting.temporal_tgds[0]).unwrap());
    }

    #[test]
    fn sometime_future_bounded_and_unbounded() {
        let base = SchemaMapping::new(
            parse_schema("Hired(name).").unwrap(),
            parse_schema("Review(name).").unwrap(),
            vec![],
            vec![],
        )
        .unwrap();
        let setting = TemporalSetting::new(
            base,
            vec![parse_temporal_tgd("Hired(n) -> sometime_future Review(n)").unwrap()],
        )
        .unwrap();
        let schema = Arc::new(parse_schema("Hired(name).").unwrap());
        // Bounded support [2,5): witness at [5,6).
        let mut b = AbstractInstanceBuilder::new(Arc::clone(&schema));
        b.add("Hired", vec![AValue::str("Ada")], iv(2, 5));
        let src = b.build();
        let tgt = temporal_chase(&src, &setting).unwrap();
        assert_eq!(tgt.snapshot_at(5).render(), "{Review(Ada)}");
        assert!(tgt.snapshot_at(6).is_empty());
        assert!(satisfies_temporal_tgd(&src, &tgt, &setting.temporal_tgds[0]).unwrap());
        // Unbounded support [2,∞): the witness must recur forever.
        let mut b = AbstractInstanceBuilder::new(schema);
        b.add("Hired", vec![AValue::str("Ada")], Interval::from(2));
        let src = b.build();
        let tgt = temporal_chase(&src, &setting).unwrap();
        assert_eq!(tgt.snapshot_at(1_000).render(), "{Review(Ada)}");
        assert!(satisfies_temporal_tgd(&src, &tgt, &setting.temporal_tgds[0]).unwrap());
    }

    #[test]
    fn always_future_fills_suffix() {
        let base = SchemaMapping::new(
            parse_schema("Tenured(name).").unwrap(),
            parse_schema("OnPayroll(name).").unwrap(),
            vec![],
            vec![],
        )
        .unwrap();
        let setting = TemporalSetting::new(
            base,
            vec![parse_temporal_tgd("Tenured(n) -> always_future OnPayroll(n)").unwrap()],
        )
        .unwrap();
        let schema = Arc::new(parse_schema("Tenured(name).").unwrap());
        let mut b = AbstractInstanceBuilder::new(schema);
        b.add("Tenured", vec![AValue::str("Ada")], iv(3, 5));
        let src = b.build();
        let tgt = temporal_chase(&src, &setting).unwrap();
        assert!(tgt.snapshot_at(3).is_empty());
        assert_eq!(tgt.snapshot_at(4).render(), "{OnPayroll(Ada)}");
        assert_eq!(tgt.snapshot_at(10_000).render(), "{OnPayroll(Ada)}");
        assert!(satisfies_temporal_tgd(&src, &tgt, &setting.temporal_tgds[0]).unwrap());
    }

    #[test]
    fn egds_apply_to_witnesses() {
        // The modal witness's existential null is merged with a constant by
        // an egd when a copied fact pins it down at the same snapshot.
        let base = SchemaMapping::new(
            parse_schema("Grad(name). Hist(name, adviser).").unwrap(),
            parse_schema("PhDCan(name, adviser).").unwrap(),
            vec![parse_tgd("Hist(n, a) -> PhDCan(n, a)").unwrap()],
            vec![parse_egd("PhDCan(n, a) & PhDCan(n, a2) -> a = a2").unwrap()],
        )
        .unwrap();
        let setting = TemporalSetting::new(
            base,
            vec![
                parse_temporal_tgd("Grad(n) -> sometime_past exists adv . PhDCan(n, adv)").unwrap(),
            ],
        )
        .unwrap();
        let schema = Arc::new(parse_schema("Grad(name). Hist(name, adviser).").unwrap());
        let mut b = AbstractInstanceBuilder::new(schema);
        b.add("Grad", vec![AValue::str("Ada")], iv(6, 8));
        // Known adviser exactly at the witness point 5.
        b.add(
            "Hist",
            vec![AValue::str("Ada"), AValue::str("Prof")],
            iv(5, 6),
        );
        let src = b.build();
        let tgt = temporal_chase(&src, &setting).unwrap();
        // The ◇⁻ obligation is already satisfied by the copied Hist fact at
        // 5 < 6, so no fresh null is even created.
        assert_eq!(tgt.snapshot_at(5).render(), "{PhDCan(Ada, Prof)}");
        assert!(tgt.snapshot_at(5).is_complete());
    }

    #[test]
    fn now_modality_equals_plain_abstract_chase() {
        let base = SchemaMapping::new(
            parse_schema("E(name, company).").unwrap(),
            parse_schema("Emp(name, company, salary).").unwrap(),
            vec![],
            vec![],
        )
        .unwrap();
        let setting = TemporalSetting::new(
            base.clone(),
            vec![parse_temporal_tgd("E(n,c) -> now exists s . Emp(n,c,s)").unwrap()],
        )
        .unwrap();
        let schema = Arc::new(parse_schema("E(name, company).").unwrap());
        let mut b = AbstractInstanceBuilder::new(schema);
        b.add("E", vec![AValue::str("Ada"), AValue::str("IBM")], iv(2, 6));
        let src = b.build();
        let via_temporal = temporal_chase(&src, &setting).unwrap();
        let plain_mapping = SchemaMapping::new(
            base.source().clone(),
            base.target().clone(),
            vec![parse_tgd("E(n,c) -> exists s . Emp(n,c,s)").unwrap()],
            vec![],
        )
        .unwrap();
        let via_plain = abstract_chase(&src, &plain_mapping).unwrap();
        assert!(crate::hom::hom_equivalent(&via_temporal, &via_plain));
    }
}
