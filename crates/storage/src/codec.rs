//! A plain byte codec for the distributed-chase wire protocol.
//!
//! The partition servers of `tdx_core::chase::distributed` exchange facts,
//! homomorphism bindings and merge operations with their coordinator as
//! *serialized byte messages*, even while they run as in-process actors:
//! every request and response crosses the channel as a `Vec<u8>` produced by
//! [`ByteWriter`] and re-parsed by [`ByteReader`]. That keeps the protocol
//! honest — nothing structured is shared through memory — so the channel
//! pair can later be swapped for a socket without touching the protocol
//! layer.
//!
//! The encoding is bincode-style: fixed-width little-endian integers, a
//! `u64` length prefix for sequences, one tag byte for enums. String
//! constants travel as their text (not their process-local
//! [`Symbol`](tdx_logic::Symbol) ids — intern ids are meaningless across
//! process boundaries) and are re-interned on decode.

use crate::temporal_instance::TemporalFact;
use crate::value::{NullId, Row, Value};
use std::fmt;
use std::sync::Arc;
use tdx_logic::{Constant, RelId};
use tdx_temporal::{Endpoint, Interval};

/// A decode failure: truncated input, an unknown enum tag, or malformed
/// UTF-8. The protocol layer treats any of these as a fatal transport
/// error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError(pub String);

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "codec error: {}", self.0)
    }
}

impl std::error::Error for CodecError {}

/// Serializes wire values into a growing byte buffer.
#[derive(Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> ByteWriter {
        ByteWriter::default()
    }

    /// The serialized bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Writes one raw byte (enum tags).
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `i64`.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Deserializes wire values from a byte slice.
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    /// Whether every byte has been consumed — a completed message must
    /// leave nothing behind.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        // `n` can come straight from a corrupted length prefix, so the
        // bounds check must not itself overflow — a wrapped `pos + n`
        // would turn malformed input into a slice panic instead of the
        // CodecError the protocol layer relies on.
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.buf.len())
            .ok_or_else(|| {
                CodecError(format!(
                    "truncated input: need {n} bytes at offset {}, have {}",
                    self.pos,
                    self.buf.len() - self.pos
                ))
            })?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    /// Reads one raw byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, CodecError> {
        Ok(i64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, CodecError> {
        let len = self.u64()? as usize;
        std::str::from_utf8(self.take(len)?)
            .map_err(|e| CodecError(format!("malformed UTF-8 string: {e}")))
    }
}

/// A value with a wire representation. Implementations must round-trip:
/// `read(write(v)) == v` (string constants round-trip by text, re-interned
/// on the decoding side).
pub trait Wire: Sized {
    /// Appends this value to `w`.
    fn write(&self, w: &mut ByteWriter);
    /// Parses one value from `r`.
    fn read(r: &mut ByteReader<'_>) -> Result<Self, CodecError>;
}

/// Serializes one `Wire` value into a standalone message buffer.
pub fn encode<T: Wire>(value: &T) -> Vec<u8> {
    let mut w = ByteWriter::new();
    value.write(&mut w);
    w.into_bytes()
}

/// Parses one `Wire` value from a standalone message buffer, requiring the
/// buffer to be fully consumed.
pub fn decode<T: Wire>(bytes: &[u8]) -> Result<T, CodecError> {
    let mut r = ByteReader::new(bytes);
    let v = T::read(&mut r)?;
    if !r.is_exhausted() {
        return Err(CodecError("trailing bytes after message".into()));
    }
    Ok(v)
}

impl Wire for u32 {
    fn write(&self, w: &mut ByteWriter) {
        w.u32(*self);
    }
    fn read(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        r.u32()
    }
}

impl Wire for u64 {
    fn write(&self, w: &mut ByteWriter) {
        w.u64(*self);
    }
    fn read(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        r.u64()
    }
}

impl Wire for usize {
    fn write(&self, w: &mut ByteWriter) {
        w.u64(*self as u64);
    }
    fn read(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(r.u64()? as usize)
    }
}

impl Wire for String {
    fn write(&self, w: &mut ByteWriter) {
        w.str(self);
    }
    fn read(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(r.str()?.to_string())
    }
}

impl Wire for RelId {
    fn write(&self, w: &mut ByteWriter) {
        w.u32(self.0);
    }
    fn read(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(RelId(r.u32()?))
    }
}

impl Wire for Value {
    fn write(&self, w: &mut ByteWriter) {
        match self {
            Value::Const(Constant::Int(i)) => {
                w.u8(0);
                w.i64(*i);
            }
            Value::Const(Constant::Str(s)) => {
                w.u8(1);
                w.str(s.as_str());
            }
            Value::Null(NullId(n)) => {
                w.u8(2);
                w.u64(*n);
            }
        }
    }
    fn read(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        match r.u8()? {
            0 => Ok(Value::Const(Constant::Int(r.i64()?))),
            1 => Ok(Value::str(r.str()?)),
            2 => Ok(Value::Null(NullId(r.u64()?))),
            tag => Err(CodecError(format!("unknown Value tag {tag}"))),
        }
    }
}

impl Wire for Interval {
    fn write(&self, w: &mut ByteWriter) {
        w.u64(self.start());
        match self.end() {
            Endpoint::Fin(e) => {
                w.u8(0);
                w.u64(e);
            }
            Endpoint::Inf => w.u8(1),
        }
    }
    fn read(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let start = r.u64()?;
        match r.u8()? {
            0 => {
                let end = r.u64()?;
                if end <= start {
                    return Err(CodecError(format!("empty interval [{start}, {end})")));
                }
                Ok(Interval::new(start, end))
            }
            1 => Ok(Interval::from(start)),
            tag => Err(CodecError(format!("unknown Interval end tag {tag}"))),
        }
    }
}

impl Wire for Row {
    fn write(&self, w: &mut ByteWriter) {
        w.u64(self.len() as u64);
        for v in self.iter() {
            v.write(w);
        }
    }
    fn read(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let len = r.u64()? as usize;
        let mut vals = Vec::with_capacity(len.min(1024));
        for _ in 0..len {
            vals.push(Value::read(r)?);
        }
        Ok(Arc::from(vals))
    }
}

impl Wire for TemporalFact {
    fn write(&self, w: &mut ByteWriter) {
        self.data.write(w);
        self.interval.write(w);
    }
    fn read(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(TemporalFact {
            data: Row::read(r)?,
            interval: Interval::read(r)?,
        })
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn write(&self, w: &mut ByteWriter) {
        w.u64(self.len() as u64);
        for item in self {
            item.write(w);
        }
    }
    fn read(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let len = r.u64()? as usize;
        let mut out = Vec::with_capacity(len.min(1024));
        for _ in 0..len {
            out.push(T::read(r)?);
        }
        Ok(out)
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn write(&self, w: &mut ByteWriter) {
        self.0.write(w);
        self.1.write(w);
    }
    fn read(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok((A::read(r)?, B::read(r)?))
    }
}

impl<A: Wire, B: Wire, C: Wire> Wire for (A, B, C) {
    fn write(&self, w: &mut ByteWriter) {
        self.0.write(w);
        self.1.write(w);
        self.2.write(w);
    }
    fn read(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok((A::read(r)?, B::read(r)?, C::read(r)?))
    }
}

impl<A: Wire, B: Wire, C: Wire, D: Wire> Wire for (A, B, C, D) {
    fn write(&self, w: &mut ByteWriter) {
        self.0.write(w);
        self.1.write(w);
        self.2.write(w);
        self.3.write(w);
    }
    fn read(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok((A::read(r)?, B::read(r)?, C::read(r)?, D::read(r)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::row;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = encode(&v);
        assert_eq!(decode::<T>(&bytes).unwrap(), v);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0u32);
        roundtrip(u32::MAX);
        roundtrip(u64::MAX);
        roundtrip(usize::MAX);
        roundtrip(String::new());
        roundtrip("Ada Lovelace — 18k".to_string());
        roundtrip(RelId(7));
    }

    #[test]
    fn values_roundtrip() {
        roundtrip(Value::str("IBM"));
        roundtrip(Value::int(-42));
        roundtrip(Value::Null(NullId(9)));
    }

    #[test]
    fn intervals_roundtrip_including_unbounded() {
        roundtrip(Interval::new(2012, 2014));
        roundtrip(Interval::from(2014)); // unbounded end
        roundtrip(Interval::from(0));
        assert!(Interval::from(2014).is_unbounded());
    }

    #[test]
    fn facts_and_containers_roundtrip() {
        let fact = TemporalFact {
            data: row([Value::str("Ada"), Value::int(18), Value::Null(NullId(3))]),
            interval: Interval::from(2013),
        };
        roundtrip(fact.clone());
        roundtrip(vec![fact.clone(), fact]);
        roundtrip((RelId(1), Interval::new(1, 2)));
        roundtrip((1u32, "x".to_string(), Interval::from(5)));
        roundtrip(Vec::<Value>::new());
    }

    #[test]
    fn decode_rejects_malformed_input() {
        // Truncated.
        let bytes = encode(&Interval::new(3, 9));
        assert!(decode::<Interval>(&bytes[..bytes.len() - 1]).is_err());
        // Trailing garbage.
        let mut bytes = encode(&Value::int(1));
        bytes.push(0);
        assert!(decode::<Value>(&bytes).is_err());
        // Unknown tag.
        assert!(decode::<Value>(&[9]).is_err());
        // A corrupted length prefix near u64::MAX must error, not panic.
        let mut w = ByteWriter::new();
        w.u64(u64::MAX - 2);
        assert!(decode::<String>(&w.into_bytes()).is_err());
        let mut w = ByteWriter::new();
        w.u64(u64::MAX);
        assert!(decode::<Vec<u64>>(&w.into_bytes()).is_err());
        // Empty interval on the wire.
        let mut w = ByteWriter::new();
        w.u64(5);
        w.u8(0);
        w.u64(5);
        assert!(decode::<Interval>(&w.into_bytes()).is_err());
    }

    #[test]
    fn string_constants_reintern_on_decode() {
        let v = Value::str("codec-reintern-probe");
        let decoded: Value = decode(&encode(&v)).unwrap();
        // Equality is by intern id — same process, same symbol.
        assert_eq!(decoded, v);
    }
}
